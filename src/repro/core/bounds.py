"""Lower-bound cost functions ``L`` (Section 3.5).

The bounding operation computes a "pessimistic" (from the pruning point
of view: *optimistic*, never above the truth) estimate of the maximum
task lateness reachable from a vertex:

    L_hat = max { f_hat_i - D_i : tau_i in T }

where ``f_hat_i`` is an estimated finish time.  Scheduled tasks use their
actual finish times; unscheduled tasks use a recursion over their direct
predecessors.

* :class:`LB0` — the critical-path recursion of Hou & Shin [4]:
  ``f_hat_i = max({a_i + c_i} U {max(f_hat_j, a_i) + c_i : j <. i})``.
* :class:`LB1` — the paper's new *adaptive* bound: identical, except
  every unscheduled task additionally waits for ``l_min``, the earliest
  time at which a new task can be scheduled on **any** processor (the
  minimum per-processor availability).  Because the run-time model
  appends tasks, no future task can start before ``l_min``, so the bound
  remains a true lower bound while modelling processor contention.
* :class:`LB2` — our processor-aware extension (not in the paper): for
  each unscheduled task the estimate is minimized over the processor it
  could run on, accounting for per-processor availability and the
  cheapest placement of messages from already-placed predecessors.
  Dominates LB1; used in ablation benchmarks.
* :class:`TrivialBound` — returns the lateness of the placed tasks only
  (the weakest sound bound; ablation baseline).

All bounds return the *vertex cost*: for goal vertices the estimate
coincides with the true maximum task lateness.

Incremental evaluation
----------------------
``evaluate`` recomputes the full Hou & Shin recursion from scratch —
``O(n + E)`` per vertex — and is kept as the *reference oracle*.  The
fused expansion path (:mod:`repro.core.expand`) instead calls
:meth:`LowerBound.make_incremental`: LB0 and LB1 decompose into the
parent's estimate vector plus a small *dirty set* (descendants of the
placed task, plus — for LB1 — tasks whose start was pinned by the old
``l_min``).  The incremental evaluators replicate the reference float
operations exactly, so the two paths produce bitwise-identical bounds;
the property tests in ``tests/test_core_expand.py`` enforce this.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..model.compile import CompiledProblem
from .state import SearchState

__all__ = [
    "LowerBound",
    "LB0",
    "LB1",
    "LB2",
    "TrivialBound",
    "LOWER_BOUNDS",
    "IncrementalEvaluator",
]


class LowerBound(ABC):
    """Strategy interface for the lower-bound cost function ``L``."""

    #: Short identifier used in parameter summaries and reports.
    name: str = "?"

    #: Whether ``L(child) >= L(parent)`` holds along every tree edge
    #: (true for every shipped bound; the fused expansion path uses the
    #: parent's bound as a free admission pre-check when set).
    monotone: bool = False

    #: Whether the static-tail pressure ``s + tail_lateness[task]`` is a
    #: valid lower bound on this bound's child value (true for bounds
    #: dominating LB0's critical-path recursion; false for
    #: :class:`TrivialBound`, which ignores unscheduled tasks).
    tail_admissible: bool = False

    @abstractmethod
    def evaluate(self, state: SearchState) -> float:
        """Lower bound on the best complete-schedule cost below ``state``."""

    def make_incremental(
        self, problem: CompiledProblem
    ) -> "IncrementalEvaluator | None":
        """Incremental evaluator for ``problem``, or None when unsupported.

        Bounds without an incremental decomposition return None; the
        fused expansion path then falls back to :meth:`evaluate` on the
        frozen child state (still skipping most construction churn).
        """
        return None

    def __call__(self, state: SearchState) -> float:
        return self.evaluate(state)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class IncrementalEvaluator(ABC):
    """Per-problem incremental form of a lower bound.

    The evaluator threads two per-vertex vectors through the search
    tree (both indexed by task):

    * ``est`` — the reference recursion's finish estimates (actual
      finish times for scheduled tasks);
    * ``estart`` — the pre-``wcet`` start estimates.  Kept separately
      because ``est[i] - wcet[i]`` is not bitwise ``estart[i]`` under
      IEEE rounding, and the LB1 ``l_min``-shift skip test needs the
      exact start to stay byte-identical with the reference oracle.

    :meth:`child` evaluates into *reusable scratch buffers* (no
    allocation for children that end up pruned); the caller freezes the
    vectors with :meth:`commit` only for children that survive.  The
    parent's vectors are never mutated, and committed vectors are
    immutable — :meth:`commit` may return the parent's own list when a
    vector is provably unchanged.
    """

    #: Whether the bound consumes the child's minimum processor
    #: availability (``l_min``); the expander skips computing it
    #: otherwise.
    uses_lmin: bool = False

    @abstractmethod
    def root(
        self, state: SearchState
    ) -> tuple[float, list[float], list[float]]:
        """Full evaluation of ``state``: ``(lb, est, estart)``."""

    @abstractmethod
    def child(
        self,
        est: list[float],
        estart: list[float],
        parent_lb: float,
        task: int,
        finish: float,
        sched_mask: int,
        lmin: float,
        lmin_changed: bool,
    ) -> float:
        """Evaluate the child that placed ``task`` finishing at ``finish``.

        ``est``/``estart``/``parent_lb`` describe the parent vertex;
        ``sched_mask`` is the *child's* scheduled set; ``lmin`` the
        child's minimum processor availability (ignored by bounds with
        ``uses_lmin`` False).  The child's vectors are left in scratch
        until the next :meth:`child` call; freeze them via
        :meth:`commit` if the child is kept.
        """

    @abstractmethod
    def commit(self) -> tuple[list[float], list[float]]:
        """Freeze the scratch vectors of the last :meth:`child` call."""

    def begin(
        self,
        est: list[float],
        estart: list[float],
        sched_mask: int,
        lmin_cap: float,
    ) -> None:
        """Optional hook before a sibling batch that may shift ``l_min``.

        The expander calls this once per expansion (only when a child
        *can* advance the availability floor) with the parent's vectors
        and ``lmin_cap``, an upper bound on any child's new floor.
        Evaluators may cache parent-derived work here; the default does
        nothing, and every evaluator must stay correct when the hook is
        never invoked.
        """


class TrivialBound(LowerBound):
    """Lateness of the already-placed tasks; ignores the future entirely."""

    name = "trivial"
    monotone = True
    tail_admissible = False

    def evaluate(self, state: SearchState) -> float:
        return state.scheduled_lateness

    def make_incremental(
        self, problem: CompiledProblem
    ) -> "IncrementalEvaluator | None":
        return _IncrementalTrivial(problem)


class _IncrementalTrivial(IncrementalEvaluator):
    """Scheduled lateness needs no estimate vectors at all."""

    __slots__ = ("_deadline",)

    _EMPTY: list[float] = []

    def __init__(self, problem: CompiledProblem) -> None:
        self._deadline = problem.deadline

    def root(
        self, state: SearchState
    ) -> tuple[float, list[float], list[float]]:
        return state.scheduled_lateness, self._EMPTY, self._EMPTY

    def child(
        self,
        est: list[float],
        estart: list[float],
        parent_lb: float,
        task: int,
        finish: float,
        sched_mask: int,
        lmin: float,
        lmin_changed: bool,
    ) -> float:
        lat = finish - self._deadline[task]
        if lat < parent_lb:
            lat = parent_lb
        return lat

    def commit(self) -> tuple[list[float], list[float]]:
        return self._EMPTY, self._EMPTY


class LB0(LowerBound):
    """Critical-path lower bound (no processor contention)."""

    name = "LB0"
    monotone = True
    tail_admissible = True

    def make_incremental(
        self, problem: CompiledProblem
    ) -> "IncrementalEvaluator | None":
        return _IncrementalLB0(problem)

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            e = a
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


class LB1(LowerBound):
    """The paper's adaptive bound: LB0 plus the contention term ``l_min``."""

    name = "LB1"
    monotone = True
    tail_admissible = True

    def make_incremental(
        self, problem: CompiledProblem
    ) -> "IncrementalEvaluator | None":
        return _IncrementalLB1(problem)

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        lmin = min(state.avail)
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            e = a if a > lmin else lmin
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


class LB2(LowerBound):
    """Processor-aware extension of LB1 (ours; ablation only).

    For each unscheduled task the finish estimate is minimized over the
    processor it might run on: placement on processor ``q`` cannot begin
    before ``q``'s current availability, nor before a scheduled
    predecessor's finish plus the message cost from the predecessor's
    processor to ``q``; unscheduled predecessors contribute their own
    (processor-free) estimates.  Taking the minimum over ``q`` keeps the
    bound sound, and it dominates LB1 because
    ``min_q avail[q] = l_min`` is one of the terms.
    """

    name = "LB2"
    monotone = True
    tail_admissible = True

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        avail = state.avail
        proc_of = state.proc_of
        delay = p.delay
        m = p.m
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            best = float("inf")
            for q in range(m):
                e = avail[q]
                if a > e:
                    e = a
                for j, size in p.pred_edges[i]:
                    if mask >> j & 1:
                        r = finish[j] + size * delay[proc_of[j]][q]
                    else:
                        r = est[j]
                    if r > e:
                        e = r
                if e < best:
                    best = e
            e = best + wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


class _IncrementalLB0(IncrementalEvaluator):
    """Incremental critical-path recursion (dirty = placed task's cone).

    Placing ``task`` can only raise estimates of its descendants, so the
    child walk starts from ``succ_rank_mask[task]`` and follows rank
    bits upward, stopping wherever a recomputed estimate is unchanged.
    The inner recompute is a verbatim copy of :meth:`LB0.evaluate`'s
    loop body, keeping the floats bitwise identical.
    """

    __slots__ = ("p", "_sest", "_sestart", "_fast")

    def __init__(self, problem: CompiledProblem) -> None:
        self.p = problem
        self._sest = [0.0] * problem.n
        self._sestart = [0.0] * problem.n
        #: Set by :meth:`child` when the placement realized the parent's
        #: estimate exactly: the child's vectors are the parent's with
        #: one ``estart`` entry rewritten, so :meth:`commit` shares the
        #: (immutable once committed) ``est`` list and copies only
        #: ``estart`` — no scratch pass at all.
        self._fast: tuple | None = None

    def commit(self) -> tuple[list[float], list[float]]:
        fast = self._fast
        if fast is not None:
            est, estart, task, finish = fast
            cestart = estart.copy()
            cestart[task] = finish
            return est, cestart
        return self._sest.copy(), self._sestart.copy()

    def root(
        self, state: SearchState
    ) -> tuple[float, list[float], list[float]]:
        self._fast = None
        p = self.p
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        est = [0.0] * p.n
        estart = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                estart[i] = finish[i]
                continue
            a = arrival[i]
            e = a
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            estart[i] = e
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb, est, estart

    def child(
        self,
        est: list[float],
        estart: list[float],
        parent_lb: float,
        task: int,
        finish: float,
        sched_mask: int,
        lmin: float,
        lmin_changed: bool,
    ) -> float:
        p = self.p
        if finish == est[task]:
            # Placements frequently realize the parent's estimate
            # exactly; then no successor input moved, the walk is a
            # proven no-op and the bound is closed-form.
            self._fast = (est, estart, task, finish)
            lb = finish - p.deadline[task]
            return lb if lb > parent_lb else parent_lb
        self._fast = None
        sest = self._sest
        sestart = self._sestart
        sest[:] = est
        sestart[:] = estart
        est = sest
        estart = sestart
        est[task] = finish
        estart[task] = finish
        lb = finish - p.deadline[task]
        if lb < parent_lb:
            lb = parent_lb
        dirty = p.succ_rank_mask[task]
        topo = p.topo
        pred_edges = p.pred_edges
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        srm = p.succ_rank_mask
        while dirty:
            low = dirty & -dirty
            dirty ^= low
            i = topo[low.bit_length() - 1]
            if sched_mask >> i & 1:
                continue
            e = arrival[i]
            for j, _ in pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            estart[i] = e
            ne = e + wcet[i]
            if ne != est[i]:
                est[i] = ne
                dirty |= srm[i]
                lat = ne - deadline[i]
                if lat > lb:
                    lb = lat
        return lb


class _IncrementalLB1(IncrementalEvaluator):
    """Incremental adaptive bound.

    Two regimes per child:

    * ``l_min`` unchanged — identical to the LB0 walk (the contention
      floor binds exactly as it did in the parent for untouched tasks);
    * ``l_min`` advanced — a task's estimate can move only when a
      predecessor changed or the new floor exceeds its exact stored
      start (``estart[i] < l_min``).  After a :meth:`begin` call the
      handful of such tasks (empirically well under one per child) come
      from a per-batch candidate list and join the ordinary dirty walk;
      without :meth:`begin` a full ascending pass applies the same
      condition rank by rank.  Both produce bit-identical vectors.
    """

    __slots__ = ("p", "_sest", "_sestart", "_cand", "_pend", "_fast")

    uses_lmin = True

    def __init__(self, problem: CompiledProblem) -> None:
        self.p = problem
        self._sest = [0.0] * problem.n
        self._sestart = [0.0] * problem.n
        self._cand: list[tuple[float, int]] | None = None
        self._pend: tuple | None = None
        #: See :class:`_IncrementalLB0`: closed-form child, no scratch.
        self._fast: tuple | None = None

    def begin(
        self,
        est: list[float],
        estart: list[float],
        sched_mask: int,
        lmin_cap: float,
    ) -> None:
        # Any child's new floor is at most ``lmin_cap``, so only
        # unscheduled tasks with ``estart[i] < lmin_cap`` can be moved
        # by the shift.  The O(n) scan is deferred until a child
        # actually consults the list — batches where no child advances
        # the floor never pay for it.  Deferral is sound because the
        # parent's vectors are immutable for the batch's duration.
        self._cand = None
        self._pend = (estart, sched_mask, lmin_cap)

    def _candidates(self) -> list[tuple[float, int]]:
        cand = self._cand
        if cand is None:
            estart, sched_mask, lmin_cap = self._pend
            topo_pos = self.p.topo_pos
            cand = self._cand = [
                (estart[i], 1 << topo_pos[i])
                for i in range(self.p.n)
                if estart[i] < lmin_cap and not sched_mask >> i & 1
            ]
        return cand

    def commit(self) -> tuple[list[float], list[float]]:
        fast = self._fast
        if fast is not None:
            est, estart, task, finish = fast
            cestart = estart.copy()
            cestart[task] = finish
            return est, cestart
        return self._sest.copy(), self._sestart.copy()

    def root(
        self, state: SearchState
    ) -> tuple[float, list[float], list[float]]:
        self._cand = None
        self._pend = None
        self._fast = None
        p = self.p
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        lmin = min(state.avail)
        est = [0.0] * p.n
        estart = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                estart[i] = finish[i]
                continue
            a = arrival[i]
            e = a if a > lmin else lmin
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            estart[i] = e
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb, est, estart

    def child(
        self,
        est: list[float],
        estart: list[float],
        parent_lb: float,
        task: int,
        finish: float,
        sched_mask: int,
        lmin: float,
        lmin_changed: bool,
    ) -> float:
        p = self.p
        old = est[task]
        if finish == old:
            # As in LB0, successors see unchanged inputs; with a cached
            # candidate list the floor shift is also refutable in O(|C|)
            # — if nothing moves, the child is closed-form.
            fast_ok = not lmin_changed
            if not fast_ok and self._pend is not None:
                cand = self._cand
                if cand is None:
                    cand = self._candidates()
                fast_ok = True
                for ei, _bit in cand:
                    if ei < lmin:
                        fast_ok = False
                        break
            if fast_ok:
                self._fast = (est, estart, task, finish)
                lb = finish - p.deadline[task]
                return lb if lb > parent_lb else parent_lb
        self._fast = None
        sest = self._sest
        sestart = self._sestart
        sest[:] = est
        sestart[:] = estart
        est = sest
        estart = sestart
        est[task] = finish
        estart[task] = finish
        lb = finish - p.deadline[task]
        if lb < parent_lb:
            lb = parent_lb
        topo = p.topo
        pred_edges = p.pred_edges
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        srm = p.succ_rank_mask
        # When the placement realizes the estimate exactly the cascade
        # seed is a proven no-op; any task the advanced floor moves
        # re-enters below through the ``lmin`` condition instead.
        dirty = 0 if finish == old else srm[task]
        if lmin_changed:
            if self._pend is None:
                # No begin() call: full ascending pass applying the
                # same recompute condition rank by rank.
                for r in range(p.n):
                    i = topo[r]
                    if sched_mask >> i & 1:
                        continue
                    a = arrival[i]
                    base = a if a > lmin else lmin
                    if not dirty >> r & 1 and base <= estart[i]:
                        continue
                    e = base
                    for j, _ in pred_edges[i]:
                        fj = est[j]
                        if fj > e:
                            e = fj
                    estart[i] = e
                    ne = e + wcet[i]
                    if ne != est[i]:
                        est[i] = ne
                        dirty |= srm[i]
                        lat = ne - deadline[i]
                        if lat > lb:
                            lb = lat
                return lb
            # Seed the walk with the tasks this child's floor actually
            # moves (estart uses the parent's values, captured before
            # the scratch copy).  The placed task may land in the seed;
            # the walk's scheduled check drops it.
            cand = self._cand
            if cand is None:
                cand = self._candidates()
            for ei, bit in cand:
                if ei < lmin:
                    dirty |= bit
        while dirty:
            low = dirty & -dirty
            dirty ^= low
            i = topo[low.bit_length() - 1]
            if sched_mask >> i & 1:
                continue
            a = arrival[i]
            e = a if a > lmin else lmin
            for j, _ in pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            estart[i] = e
            ne = e + wcet[i]
            if ne != est[i]:
                est[i] = ne
                dirty |= srm[i]
                lat = ne - deadline[i]
                if lat > lb:
                    lb = lat
        return lb


#: Registry by name for CLI/experiment configuration.
LOWER_BOUNDS: dict[str, type[LowerBound]] = {
    LB0.name: LB0,
    LB1.name: LB1,
    LB2.name: LB2,
    TrivialBound.name: TrivialBound,
}
