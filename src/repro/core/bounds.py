"""Lower-bound cost functions ``L`` (Section 3.5).

The bounding operation computes a "pessimistic" (from the pruning point
of view: *optimistic*, never above the truth) estimate of the maximum
task lateness reachable from a vertex:

    L_hat = max { f_hat_i - D_i : tau_i in T }

where ``f_hat_i`` is an estimated finish time.  Scheduled tasks use their
actual finish times; unscheduled tasks use a recursion over their direct
predecessors.

* :class:`LB0` — the critical-path recursion of Hou & Shin [4]:
  ``f_hat_i = max({a_i + c_i} U {max(f_hat_j, a_i) + c_i : j <. i})``.
* :class:`LB1` — the paper's new *adaptive* bound: identical, except
  every unscheduled task additionally waits for ``l_min``, the earliest
  time at which a new task can be scheduled on **any** processor (the
  minimum per-processor availability).  Because the run-time model
  appends tasks, no future task can start before ``l_min``, so the bound
  remains a true lower bound while modelling processor contention.
* :class:`LB2` — our processor-aware extension (not in the paper): for
  each unscheduled task the estimate is minimized over the processor it
  could run on, accounting for per-processor availability and the
  cheapest placement of messages from already-placed predecessors.
  Dominates LB1; used in ablation benchmarks.
* :class:`TrivialBound` — returns the lateness of the placed tasks only
  (the weakest sound bound; ablation baseline).

All bounds return the *vertex cost*: for goal vertices the estimate
coincides with the true maximum task lateness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .state import SearchState

__all__ = ["LowerBound", "LB0", "LB1", "LB2", "TrivialBound", "LOWER_BOUNDS"]


class LowerBound(ABC):
    """Strategy interface for the lower-bound cost function ``L``."""

    #: Short identifier used in parameter summaries and reports.
    name: str = "?"

    @abstractmethod
    def evaluate(self, state: SearchState) -> float:
        """Lower bound on the best complete-schedule cost below ``state``."""

    def __call__(self, state: SearchState) -> float:
        return self.evaluate(state)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class TrivialBound(LowerBound):
    """Lateness of the already-placed tasks; ignores the future entirely."""

    name = "trivial"

    def evaluate(self, state: SearchState) -> float:
        return state.scheduled_lateness


class LB0(LowerBound):
    """Critical-path lower bound (no processor contention)."""

    name = "LB0"

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            e = a
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


class LB1(LowerBound):
    """The paper's adaptive bound: LB0 plus the contention term ``l_min``."""

    name = "LB1"

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        lmin = min(state.avail)
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            e = a if a > lmin else lmin
            for j, _ in p.pred_edges[i]:
                fj = est[j]
                if fj > e:
                    e = fj
            e += wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


class LB2(LowerBound):
    """Processor-aware extension of LB1 (ours; ablation only).

    For each unscheduled task the finish estimate is minimized over the
    processor it might run on: placement on processor ``q`` cannot begin
    before ``q``'s current availability, nor before a scheduled
    predecessor's finish plus the message cost from the predecessor's
    processor to ``q``; unscheduled predecessors contribute their own
    (processor-free) estimates.  Taking the minimum over ``q`` keeps the
    bound sound, and it dominates LB1 because
    ``min_q avail[q] = l_min`` is one of the terms.
    """

    name = "LB2"

    def evaluate(self, state: SearchState) -> float:
        p = state.problem
        mask = state.scheduled_mask
        finish = state.finish
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        avail = state.avail
        proc_of = state.proc_of
        delay = p.delay
        m = p.m
        est = [0.0] * p.n
        lb = state.scheduled_lateness
        for i in p.topo:
            if mask >> i & 1:
                est[i] = finish[i]
                continue
            a = arrival[i]
            best = float("inf")
            for q in range(m):
                e = avail[q]
                if a > e:
                    e = a
                for j, size in p.pred_edges[i]:
                    if mask >> j & 1:
                        r = finish[j] + size * delay[proc_of[j]][q]
                    else:
                        r = est[j]
                    if r > e:
                        e = r
                if e < best:
                    best = e
            e = best + wcet[i]
            est[i] = e
            lat = e - deadline[i]
            if lat > lb:
                lb = lat
        return lb


#: Registry by name for CLI/experiment configuration.
LOWER_BOUNDS: dict[str, type[LowerBound]] = {
    LB0.name: LB0,
    LB1.name: LB1,
    LB2.name: LB2,
    TrivialBound.name: TrivialBound,
}
