"""Resource bounds ``RB = <TIMELIMIT, MAXSZAS, MAXSZDB>`` (Section 3).

The paper's semantics:

* **TIMELIMIT** — maximum wall-clock time to find a solution.  On
  expiry the algorithm "either fails or terminates with the best
  solution found so far"; we do the latter by default and raise
  :class:`~repro.errors.ResourceLimitExceeded` when
  ``fail_on_exhaustion`` is set.
* **MAXSZAS** — maximum size of the active set.  On overflow "the
  algorithm must dispose of one or more of the active intermediate
  solutions, thereby running the risk of missing the optimal solution";
  we drop the worst-bound vertices and mark the result as truncated.
* **MAXSZDB** — maximum number of child vertices per branching; excess
  children (worst bounds first) are discarded, likewise truncating.

``max_vertices`` is our addition: a hard cap on generated vertices so
benchmark instances cannot run away (pure-Python searches are slower
than the paper's C milieu).  ``max_memory_bytes`` is likewise ours: a
resident-set ceiling (MEMLIMIT) checked on the same cadence as
TIMELIMIT, so a search that would otherwise be OOM-killed instead stops
cooperatively with its incumbent and a final checkpoint.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ResourceBounds", "UNBOUNDED", "current_rss_bytes"]

#: Convenience alias for "no limit".
UNBOUNDED = math.inf

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_bytes() -> int:
    """Resident-set size of this process, in bytes (0 if unknowable).

    Reads ``/proc/self/statm`` where available (Linux — one syscall, no
    allocation churn); falls back to ``resource.getrusage``, whose
    ``ru_maxrss`` is a high-water mark rather than the current value —
    still the right side to err on for a *limit* check.
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


@dataclass(frozen=True)
class ResourceBounds:
    """The RB triple plus a generated-vertex cap.

    All limits default to unbounded.  ``time_limit`` is in seconds.
    """

    time_limit: float = UNBOUNDED
    max_active: float = UNBOUNDED
    max_children: float = UNBOUNDED
    max_vertices: float = UNBOUNDED
    max_memory_bytes: float = UNBOUNDED
    #: When True, exceeding any bound raises instead of degrading.
    fail_on_exhaustion: bool = False

    def __post_init__(self) -> None:
        for field_name in (
            "time_limit",
            "max_active",
            "max_children",
            "max_vertices",
            "max_memory_bytes",
        ):
            value = getattr(self, field_name)
            if not value > 0:
                raise ConfigurationError(
                    f"resource bound {field_name} must be positive, got {value}"
                )

    @property
    def bounded(self) -> bool:
        """Whether any limit is finite."""
        return any(
            not math.isinf(v)
            for v in (
                self.time_limit,
                self.max_active,
                self.max_children,
                self.max_vertices,
                self.max_memory_bytes,
            )
        )

    def describe(self) -> str:
        def fmt(v: float) -> str:
            return "inf" if math.isinf(v) else f"{v:g}"

        desc = (
            f"RB<TIMELIMIT={fmt(self.time_limit)}s, "
            f"MAXSZAS={fmt(self.max_active)}, "
            f"MAXSZDB={fmt(self.max_children)}, "
            f"MAXVERT={fmt(self.max_vertices)}"
        )
        if not math.isinf(self.max_memory_bytes):
            desc += f", MEMLIMIT={fmt(self.max_memory_bytes)}B"
        return desc + ">"
