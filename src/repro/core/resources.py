"""Resource bounds ``RB = <TIMELIMIT, MAXSZAS, MAXSZDB>`` (Section 3).

The paper's semantics:

* **TIMELIMIT** — maximum wall-clock time to find a solution.  On
  expiry the algorithm "either fails or terminates with the best
  solution found so far"; we do the latter by default and raise
  :class:`~repro.errors.ResourceLimitExceeded` when
  ``fail_on_exhaustion`` is set.
* **MAXSZAS** — maximum size of the active set.  On overflow "the
  algorithm must dispose of one or more of the active intermediate
  solutions, thereby running the risk of missing the optimal solution";
  we drop the worst-bound vertices and mark the result as truncated.
* **MAXSZDB** — maximum number of child vertices per branching; excess
  children (worst bounds first) are discarded, likewise truncating.

``max_vertices`` is our addition: a hard cap on generated vertices so
benchmark instances cannot run away (pure-Python searches are slower
than the paper's C milieu).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["ResourceBounds", "UNBOUNDED"]

#: Convenience alias for "no limit".
UNBOUNDED = math.inf


@dataclass(frozen=True)
class ResourceBounds:
    """The RB triple plus a generated-vertex cap.

    All limits default to unbounded.  ``time_limit`` is in seconds.
    """

    time_limit: float = UNBOUNDED
    max_active: float = UNBOUNDED
    max_children: float = UNBOUNDED
    max_vertices: float = UNBOUNDED
    #: When True, exceeding any bound raises instead of degrading.
    fail_on_exhaustion: bool = False

    def __post_init__(self) -> None:
        for field_name in ("time_limit", "max_active", "max_children", "max_vertices"):
            value = getattr(self, field_name)
            if not value > 0:
                raise ConfigurationError(
                    f"resource bound {field_name} must be positive, got {value}"
                )

    @property
    def bounded(self) -> bool:
        """Whether any limit is finite."""
        return any(
            not math.isinf(v)
            for v in (
                self.time_limit,
                self.max_active,
                self.max_children,
                self.max_vertices,
            )
        )

    def describe(self) -> str:
        def fmt(v: float) -> str:
            return "inf" if math.isinf(v) else f"{v:g}"

        return (
            f"RB<TIMELIMIT={fmt(self.time_limit)}s, "
            f"MAXSZAS={fmt(self.max_active)}, "
            f"MAXSZDB={fmt(self.max_children)}, "
            f"MAXVERT={fmt(self.max_vertices)}>"
        )
