"""The paper's contribution: the parametrized branch-and-bound scheduler.

Everything is organized around the Kohler–Steiglitz 9-tuple
``<B, S, E, F, D, L, U, BR, RB>`` (see :class:`BnBParameters`) driving
the Figure 1 engine (:class:`BranchAndBound`).
"""

from .bounds import LB0, LB1, LB2, LOWER_BOUNDS, LowerBound, TrivialBound
from .branching import (
    BRANCHING_RULES,
    AOBranching,
    BF1Branching,
    BFnBranching,
    BranchingRule,
    DFBranching,
    FixedOrderBranching,
)
from .dominance import (
    DOMINANCE_RULES,
    ChainedDominance,
    DominanceRule,
    NoDominance,
    StateDominance,
)
from .checkpoint import (
    Checkpointer,
    SearchCheckpoint,
    StopToken,
    graceful_interrupts,
    load_checkpoint,
    problem_fingerprint,
    write_checkpoint,
)
from .elimination import (
    ELIMINATION_RULES,
    EliminationRule,
    NoElimination,
    UDBASElimination,
    pruning_threshold,
)
from .engine import (
    BnBResult,
    BranchAndBound,
    SolveStatus,
    SubtreeDispatcher,
    SubtreeSpec,
    solve,
)
from .feasibility import (
    CHARACTERISTIC_FUNCTIONS,
    CharacteristicFunction,
    LatenessTargetFilter,
    NoFilter,
)
from .parallel import (
    FaultPlan,
    ParallelBnB,
    ParallelReport,
    SharedIncumbent,
    ShardFault,
    default_worker_count,
    solve_parallel,
)
from .params import CHILD_ORDERS, BnBParameters
from .resources import UNBOUNDED, ResourceBounds, current_rss_bytes
from .shards import (
    BackoffPolicy,
    FrontierCollector,
    RetryQueue,
    Shard,
    shard_state,
)
from .selection import (
    SELECTION_RULES,
    DepthBiasedLLBSelection,
    FIFOSelection,
    LIFOSelection,
    LLBSelection,
    MemoryLimitedSelection,
    SelectionRule,
)
from .state import AOState, SearchState, ao_root_state, root_state
from .stats import SearchStats
from .trace import ExploreEvent, IncumbentEvent, TraceRecorder
from .transposition import (
    TT_POLICIES,
    PayloadCodec,
    SharedTranspositionTable,
    TranspositionDominance,
    TranspositionTable,
    child_signature,
    find_transposition,
)
from .upper import (
    UPPER_BOUNDS,
    BestHeuristicUpperBound,
    ConstantUpperBound,
    EDFUpperBound,
    NoUpperBound,
    UpperBoundProvider,
)
from .vertex import Vertex

__all__ = [
    "AOBranching",
    "AOState",
    "BF1Branching",
    "BFnBranching",
    "BRANCHING_RULES",
    "BackoffPolicy",
    "BestHeuristicUpperBound",
    "BnBParameters",
    "BnBResult",
    "BranchAndBound",
    "BranchingRule",
    "CHARACTERISTIC_FUNCTIONS",
    "CHILD_ORDERS",
    "ChainedDominance",
    "CharacteristicFunction",
    "Checkpointer",
    "ConstantUpperBound",
    "DFBranching",
    "DepthBiasedLLBSelection",
    "DOMINANCE_RULES",
    "DominanceRule",
    "EDFUpperBound",
    "ELIMINATION_RULES",
    "EliminationRule",
    "ExploreEvent",
    "FIFOSelection",
    "FaultPlan",
    "FixedOrderBranching",
    "FrontierCollector",
    "LB0",
    "LB1",
    "LB2",
    "LIFOSelection",
    "LLBSelection",
    "LOWER_BOUNDS",
    "LatenessTargetFilter",
    "LowerBound",
    "MemoryLimitedSelection",
    "NoDominance",
    "NoElimination",
    "NoFilter",
    "NoUpperBound",
    "ParallelBnB",
    "ParallelReport",
    "PayloadCodec",
    "ResourceBounds",
    "RetryQueue",
    "SELECTION_RULES",
    "SearchCheckpoint",
    "SearchState",
    "SearchStats",
    "SelectionRule",
    "SharedIncumbent",
    "SharedTranspositionTable",
    "Shard",
    "ShardFault",
    "IncumbentEvent",
    "SolveStatus",
    "StateDominance",
    "StopToken",
    "SubtreeDispatcher",
    "SubtreeSpec",
    "TT_POLICIES",
    "TraceRecorder",
    "TranspositionDominance",
    "TranspositionTable",
    "TrivialBound",
    "UDBASElimination",
    "UNBOUNDED",
    "UPPER_BOUNDS",
    "UpperBoundProvider",
    "Vertex",
    "ao_root_state",
    "child_signature",
    "current_rss_bytes",
    "default_worker_count",
    "find_transposition",
    "graceful_interrupts",
    "load_checkpoint",
    "problem_fingerprint",
    "pruning_threshold",
    "root_state",
    "shard_state",
    "solve",
    "solve_parallel",
    "write_checkpoint",
]
