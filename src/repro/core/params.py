"""The Kohler–Steiglitz 9-tuple ``<B, S, E, F, D, L, U, BR, RB>``.

:class:`BnBParameters` bundles one concrete choice per parameter plus
two engine knobs that the paper leaves implicit (child push order and
processor-symmetry breaking, both defaulting to the faithful behaviour).
Presets reproduce every configuration the evaluation section uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigurationError
from .branching import (
    AOBranching,
    BF1Branching,
    BFnBranching,
    BranchingRule,
    DFBranching,
)
from .bounds import LB0, LB1, LowerBound
from .dominance import ChainedDominance, DominanceRule, NoDominance
from .transposition import TranspositionDominance
from .elimination import EliminationRule, UDBASElimination
from .feasibility import CharacteristicFunction, NoFilter
from .resources import ResourceBounds
from .selection import (
    LIFOSelection,
    LLBSelection,
    SelectionRule,
)
from .upper import EDFUpperBound, UpperBoundProvider

__all__ = ["BnBParameters", "CHILD_ORDERS", "ENGINES"]

#: Valid child push orders.
#:
#: * ``generation`` — push children exactly as the branching rule emits
#:   them (faithful default);
#: * ``best-last`` — sort children so the lowest bound is pushed last
#:   (under LIFO the most promising child is explored first — a common
#:   DFS refinement, exposed for ablations);
#: * ``best-first`` — lowest bound pushed first.
CHILD_ORDERS = ("generation", "best-last", "best-first")

#: Valid search-core implementations (``engine`` field).  The engine is
#: an implementation detail: it never changes results or counters, so it
#: is deliberately excluded from ``describe()`` and the checkpoint
#: problem fingerprint.
ENGINES = ("object", "array", "array-numpy")


@dataclass(frozen=True)
class BnBParameters:
    """One fully specified branch-and-bound configuration."""

    branching: BranchingRule = field(default_factory=BFnBranching)
    selection: SelectionRule = field(default_factory=LIFOSelection)
    elimination: EliminationRule = field(default_factory=UDBASElimination)
    characteristic: CharacteristicFunction = field(default_factory=NoFilter)
    dominance: DominanceRule = field(default_factory=NoDominance)
    lower_bound: LowerBound = field(default_factory=LB1)
    upper_bound: UpperBoundProvider = field(default_factory=EDFUpperBound)
    #: Inaccuracy limit BR (fraction, e.g. 0.10 for 10%).
    inaccuracy: float = 0.0
    resources: ResourceBounds = field(default_factory=ResourceBounds)
    #: Push order of surviving children into the active set.
    child_order: str = "generation"
    #: Collapse equivalent empty processors at branching (sound on
    #: uniform interconnects only; ignored otherwise).  Default off,
    #: matching the paper.
    break_symmetry: bool = False
    #: Search-core implementation: ``object`` (per-vertex SearchState
    #: objects), ``array`` (struct-of-arrays arena + native chunk driver
    #: where eligible) or ``array-numpy`` (arena + numpy batch expansion
    #: without the compiled driver).  Array engines silently fall back
    #: to the object core for configurations they cannot replicate
    #: bit-for-bit, so results are engine-independent by construction.
    engine: str = "object"

    def __post_init__(self) -> None:
        if self.inaccuracy < 0:
            raise ConfigurationError(
                f"inaccuracy limit BR must be >= 0, got {self.inaccuracy}"
            )
        if self.child_order not in CHILD_ORDERS:
            raise ConfigurationError(
                f"child_order must be one of {CHILD_ORDERS}, got {self.child_order!r}"
            )
        if self.engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if getattr(self.branching, "duplicate_free", False) and not isinstance(
            self.dominance, NoDominance
        ):
            raise ConfigurationError(
                f"branching rule {self.branching.name!r} generates each "
                f"state exactly once; composing a dominance/duplicate "
                f"layer (D={self.dominance.name!r}) is redundant and the "
                f"shipped placement-keyed stores would unsoundly collapse "
                f"distinct allocation prefixes"
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def guarantees_optimal(self) -> bool:
        """Whether this configuration can prove optimality (before RB)."""
        return self.branching.guarantees_optimal and self.inaccuracy == 0.0

    def describe(self) -> str:
        return (
            f"<B={self.branching.name}, S={self.selection.name}, "
            f"E={self.elimination.name}, F={self.characteristic.name}, "
            f"D={self.dominance.name}, L={self.lower_bound.name}, "
            f"U={self.upper_bound.name}, BR={self.inaccuracy:.0%}, "
            f"{self.resources.describe()}>"
        )

    def evolve(self, **changes) -> "BnBParameters":
        """Functional update (rules are stateless and shareable)."""
        return replace(self, **changes)

    def with_transposition(
        self, table_bytes: int = 16 << 20, policy: str = "depth"
    ) -> "BnBParameters":
        """Compose the duplicate-state transposition layer onto ``D``.

        When a dominance rule is already configured the transposition
        table is chained *first* (an O(1) hash probe is cheaper than a
        Pareto-front scan); with :class:`NoDominance` it simply replaces
        it.  Pruning exact duplicates is sound for every ``<B, S, E, L>``
        combination because the first instance of a state is either
        explored or itself soundly pruned, so duplicate subtrees cannot
        contain a strictly better completion.
        """
        tt = TranspositionDominance(table_bytes=table_bytes, policy=policy)
        if isinstance(self.dominance, NoDominance):
            return self.evolve(dominance=tt)
        return self.evolve(dominance=ChainedDominance(tt, self.dominance))

    # ------------------------------------------------------------------
    # Presets matching the paper's evaluation
    # ------------------------------------------------------------------

    @classmethod
    def paper_default(cls, **changes) -> "BnBParameters":
        """Optimal configuration: BFn / LIFO / U-DBAS / LB1 / EDF / BR=0."""
        return cls().evolve(**changes)

    @classmethod
    def paper_lifo(cls, **changes) -> "BnBParameters":
        """Figure 3(a), LIFO curve (same as :meth:`paper_default`)."""
        return cls(selection=LIFOSelection()).evolve(**changes)

    @classmethod
    def paper_llb(cls, **changes) -> "BnBParameters":
        """Figure 3(a), LLB curve."""
        return cls(selection=LLBSelection()).evolve(**changes)

    @classmethod
    def paper_lb0(cls, **changes) -> "BnBParameters":
        """Figure 3(b), LB0 curve (LIFO selection)."""
        return cls(lower_bound=LB0()).evolve(**changes)

    @classmethod
    def paper_lb1(cls, **changes) -> "BnBParameters":
        """Figure 3(b), LB1 curve (LIFO selection)."""
        return cls(lower_bound=LB1()).evolve(**changes)

    @classmethod
    def dupfree(cls, **changes) -> "BnBParameters":
        """Duplicate-free allocation-ordered tree (AO / LIFO / U-DBAS / LB1)."""
        return cls(branching=AOBranching()).evolve(**changes)

    @classmethod
    def approximate_df(cls, **changes) -> "BnBParameters":
        """Figure 3(c), depth-first approximate rule."""
        return cls(branching=DFBranching()).evolve(**changes)

    @classmethod
    def approximate_bf1(cls, **changes) -> "BnBParameters":
        """Figure 3(c), breadth-first-one-task approximate rule."""
        return cls(branching=BF1Branching()).evolve(**changes)

    @classmethod
    def near_optimal(cls, br: float = 0.10, **changes) -> "BnBParameters":
        """Figure 3(c), BFn with a performance-guarantee margin BR."""
        return cls(inaccuracy=br).evolve(**changes)
