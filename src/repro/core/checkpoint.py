"""Checkpoint/resume and cooperative-stop support for the B&B engine.

Long exhaustive cells run for hours; this module makes sure none of
that work is ever lost:

* :class:`SearchCheckpoint` — a complete, self-contained snapshot of a
  search in flight: the frontier (active set) in pop order, the
  incumbent (cost + schedule), the statistics counters, the sequence
  counter, and a fingerprint binding it to one ⟨problem, parameters⟩
  pair.
* :class:`Checkpointer` — the engine-side writer: decides *when* a
  snapshot is due (every N explored vertices) and writes it atomically
  (temp file + ``os.replace`` in the same directory), so a kill at any
  instant leaves either the previous snapshot or the new one — never a
  torn file.
* :func:`load_checkpoint` / :func:`write_checkpoint` — the file format,
  with every failure mode mapped to :class:`~repro.errors.CheckpointError`.
* :func:`problem_fingerprint` — SHA-256 over the task graph, platform
  and the search-shaping parameters ⟨B,S,E,F,D,L,U,BR⟩ (plus the
  engine's order/symmetry knobs).  Resource bounds RB are deliberately
  *excluded*: resuming a capped run with bigger limits is the whole
  point of the runbook, and RB never changes which vertex the search
  visits next — only when it stops.
* :class:`StopToken` / :func:`graceful_interrupts` — cooperative
  shutdown: SIGINT/SIGTERM set the token, the engine notices at the top
  of its loop and returns an anytime result instead of dying.

Restoration notes (why resumed == straight holds): the frontier is
stored as ``(state, lower_bound, seq)`` triples, dropping the fused
path's incremental-bound vectors — the expander recomputes them from
the bare state with identical results.  Pickle memoization stores the
compiled problem once for the whole frontier, and on load every state
is re-bound to the live problem object.  The transposition table is
*not* checkpointed: dropping it is sound (duplicates are re-explored,
never mis-pruned), so a resumed run can only generate *more* vertices
than the uninterrupted one when D includes a transposition layer, and
exactly the same number otherwise.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pickle
import signal
import threading
import time
import warnings
from dataclasses import dataclass, field

from ..errors import CheckpointError

__all__ = [
    "CHECKPOINT_FORMAT",
    "Checkpointer",
    "SearchCheckpoint",
    "StopToken",
    "graceful_interrupts",
    "load_checkpoint",
    "problem_fingerprint",
    "write_checkpoint",
]

CHECKPOINT_FORMAT = "repro/checkpoint-v1"

#: On-disk header preceding the pickled snapshot:
#: ``b"repro/checkpoint-v1 sha256=<hex> len=<bytes>\n"``.  The digest
#: covers the pickled payload, so truncation and bit-flips are caught
#: *before* unpickling; ``len`` distinguishes truncation from
#: corruption in the error message.  Files written before the header
#: existed start with the pickle protocol-2+ magic ``b"\x80"`` instead,
#: which can never collide with this ASCII prefix — they still load,
#: with a warning that they are unverifiable.
_HEADER_PREFIX = CHECKPOINT_FORMAT.encode() + b" "


def problem_fingerprint(problem, params) -> str:
    """SHA-256 binding a checkpoint to one ⟨problem, parameters⟩ pair.

    Covers the task graph (canonical JSON), the platform (processor
    count, interconnect, context switch) and every parameter that
    shapes the search trajectory: ⟨B,S,E,F,D,L,U,BR⟩ plus child order
    and symmetry breaking.  Excludes RB — see the module docstring.
    """
    from ..io.json_io import graph_to_dict  # lazy: io imports wide

    h = hashlib.sha256()
    h.update(
        json.dumps(graph_to_dict(problem.graph), sort_keys=True).encode()
    )
    h.update(repr(problem.platform).encode())
    h.update(repr(problem.platform.context_switch).encode())
    h.update(
        (
            f"B={params.branching.name};S={params.selection.name};"
            f"E={params.elimination.name};F={params.characteristic.name};"
            f"D={params.dominance.name};L={params.lower_bound.name};"
            f"U={params.upper_bound.name};BR={params.inaccuracy!r};"
            f"order={params.child_order};sym={params.break_symmetry}"
        ).encode()
    )
    return h.hexdigest()


@dataclass
class SearchCheckpoint:
    """One atomically-written snapshot of a search in flight."""

    fingerprint: str
    #: ``(state, lower_bound, seq)`` triples in pop order, the in-hand
    #: vertex (popped but not yet expanded) first.
    frontier: list[tuple]
    #: Next vertex sequence number (restored so resumed tie-breaks
    #: match the uninterrupted run exactly).
    seq: int
    incumbent_cost: float
    found_cost: float
    best_proc: tuple | None
    best_start: tuple | None
    incumbent_source: str
    initial_upper_bound: float
    #: ``SearchStats.as_dict()`` at snapshot time.
    stats: dict
    format: str = CHECKPOINT_FORMAT
    #: Monotone per-run counter, stamped by :meth:`Checkpointer.write`.
    version: int = 0
    #: Wall-clock time the snapshot was written (``time.time()``).
    created: float = 0.0


def write_checkpoint(snapshot: SearchCheckpoint, path: str) -> str:
    """Atomically replace ``path`` with the pickled snapshot.

    The temp file lives in the target's directory so ``os.replace`` is
    a same-filesystem rename — atomic on POSIX.  ``fsync`` before the
    rename ensures a crash never promotes an empty file.
    """
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = (
        f"{CHECKPOINT_FORMAT} sha256={digest} len={len(payload)}\n".encode()
    )
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        with contextlib.suppress(OSError):
            os.unlink(tmp)
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return path


def _verified_payload(path: str, raw: bytes) -> bytes:
    """Strip and verify the digest header; pass legacy files through."""
    if not raw.startswith(_HEADER_PREFIX):
        # Pre-digest v1 file (starts with the pickle magic): loadable
        # but unverifiable — say so rather than silently trusting it.
        warnings.warn(
            f"checkpoint {path} has no content digest (written by an "
            "older version); loading without integrity verification",
            stacklevel=3,
        )
        return raw
    line_end = raw.find(b"\n")
    if line_end < 0:
        raise CheckpointError(f"corrupt checkpoint {path}: truncated header")
    try:
        fields = dict(
            part.split(b"=", 1)
            for part in raw[len(_HEADER_PREFIX) : line_end].split()
        )
        expected = fields[b"sha256"].decode("ascii")
        length = int(fields[b"len"])
    except (KeyError, ValueError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint {path}: malformed header"
        ) from exc
    payload = raw[line_end + 1 :]
    if len(payload) != length:
        raise CheckpointError(
            f"corrupt checkpoint {path}: truncated payload "
            f"({len(payload)} bytes, header says {length})"
        )
    if hashlib.sha256(payload).hexdigest() != expected:
        raise CheckpointError(
            f"corrupt checkpoint {path}: content digest mismatch "
            "(bit rot or concurrent write)"
        )
    return payload


def load_checkpoint(path: str) -> SearchCheckpoint:
    """Read a snapshot back, mapping every failure to CheckpointError.

    The SHA-256 header written by :func:`write_checkpoint` is verified
    *before* unpickling, so a truncated or bit-flipped file fails
    loudly instead of feeding garbage to pickle.  Digest-less files
    from older versions still load, with a warning.
    """
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    payload = _verified_payload(path, raw)
    try:
        snapshot = pickle.loads(payload)
    except Exception as exc:  # unpickling: corrupt/truncated/foreign file
        raise CheckpointError(
            f"corrupt checkpoint {path}: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(snapshot, SearchCheckpoint):
        raise CheckpointError(
            f"{path} is not a search checkpoint "
            f"(got {type(snapshot).__name__})"
        )
    if snapshot.format != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format {snapshot.format!r} "
            f"(expected {CHECKPOINT_FORMAT!r})"
        )
    return snapshot


class Checkpointer:
    """Engine-side periodic writer: one file, versioned, atomic.

    ``every`` counts *explored* vertices (the loop's natural cadence);
    the first period starts at whatever count the run begins with, so a
    resumed search does not immediately re-write what it just read.
    """

    def __init__(self, path: str, every: int = 2000) -> None:
        if every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.path = os.fspath(path)
        self.every = int(every)
        self.version = 0
        self.writes = 0
        self._next: int | None = None

    def due(self, explored: int) -> bool:
        """Whether a snapshot should be written at this explored count."""
        if self._next is None:
            self._next = explored + self.every
            return False
        if explored >= self._next:
            self._next = explored + self.every
            return True
        return False

    def write(self, snapshot: SearchCheckpoint) -> str:
        snapshot.version = self.version
        snapshot.created = time.time()
        path = write_checkpoint(snapshot, self.path)
        self.version += 1
        self.writes += 1
        return path

    def resume_from(self, snapshot: SearchCheckpoint) -> None:
        """Continue the version sequence of a loaded snapshot."""
        self.version = snapshot.version + 1


class StopToken:
    """Cooperative stop flag shared between signal handlers and the loop.

    Thread- and signal-safe: setting is a single attribute write, and
    the engine only ever reads.  ``reason`` records what asked for the
    stop (``"SIGINT"``, ``"SIGTERM"``, or a caller-supplied string).
    """

    __slots__ = ("_flag", "reason")

    def __init__(self) -> None:
        self._flag = False
        self.reason: str | None = None

    def set(self, reason: str = "requested") -> None:
        self.reason = reason
        self._flag = True

    def is_set(self) -> bool:
        return self._flag

    def clear(self) -> None:
        self._flag = False
        self.reason = None


@contextlib.contextmanager
def graceful_interrupts(token: StopToken, signals=(signal.SIGINT, signal.SIGTERM)):
    """Route SIGINT/SIGTERM into ``token`` for the duration of a solve.

    The previous handlers are restored on exit.  A *second* delivery of
    the same signal re-raises the default behaviour (so a stuck process
    can still be killed with a double Ctrl-C).  Outside the main thread
    (where ``signal.signal`` raises), this is a no-op passthrough —
    the caller keeps whatever stop mechanism it already has.
    """
    if threading.current_thread() is not threading.main_thread():
        yield token
        return

    previous = {}

    def _handler(signum, frame):
        if token.is_set():
            # Second signal: restore and re-deliver — the user means it.
            signal.signal(signum, previous.get(signum, signal.SIG_DFL))
            signal.raise_signal(signum)
            return
        token.set(signal.Signals(signum).name)

    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, _handler)
    except (ValueError, OSError):
        # Unsupported signal on this platform/interpreter: passthrough.
        for sig, old in previous.items():
            signal.signal(sig, old)
        yield token
        return
    try:
        yield token
    finally:
        for sig, old in previous.items():
            with contextlib.suppress(ValueError, OSError):
                signal.signal(sig, old)
