"""Vertex selection rules ``S`` (Section 3.2).

The selection rule picks the next active vertex to explore and defines
the search's stop condition:

* ``S_LLB`` — least lower bound (best-first).  Stop when the selected
  vertex's bound is >= the current upper-bound cost: no remaining vertex
  can improve on the incumbent.
* ``S_LIFO`` — last in, first out (depth-first).  Stop when the active
  set is empty.
* ``S_FIFO`` — first in, first out (breadth-first).  Stop when the
  active set is empty.  Included for completeness; the paper dismisses
  it (all goal vertices sit at the same level ``n``, so FIFO generates
  every intermediate vertex before reaching any solution).
* ``S_LLB-D`` (ours) — least lower bound with a *depth* tie-break:
  among equal bounds the deepest vertex wins.  On lateness objectives
  huge bound plateaus are the norm (the cost is set by one critical
  task), and plain LLB walks them breadth-first; biasing ties toward
  depth restores goal-directed behaviour while keeping the best-first
  stop condition.  An ablation of the paper's C1 finding.

A rule is a factory for :class:`Frontier` objects — the active set ``AS``
with the access discipline baked in.  Frontiers support eager pruning
(:meth:`Frontier.prune_above`), used by the U/DBAS elimination rule when
the incumbent improves.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from collections import deque

from ..errors import ConfigurationError
from .vertex import Vertex

__all__ = [
    "DepthBiasedLLBSelection",
    "FIFOSelection",
    "Frontier",
    "LIFOSelection",
    "LLBSelection",
    "MemoryLimitedSelection",
    "SELECTION_RULES",
    "SelectionRule",
]


class Frontier(ABC):
    """The active set ``AS`` under one selection discipline."""

    @abstractmethod
    def push(self, vertex: Vertex) -> None:
        """Insert a newly generated active vertex."""

    @abstractmethod
    def pop(self) -> Vertex | None:
        """Remove and return the next vertex to explore (None when empty)."""

    @abstractmethod
    def prune_above(self, threshold: float) -> int:
        """Drop every vertex with ``L(v) >= threshold``; return the count."""

    @abstractmethod
    def drop_worst(self, count: int) -> int:
        """Dispose of up to ``count`` vertices with the *largest* bounds.

        Implements the paper's MAXSZAS overflow semantics ("the algorithm
        must dispose of one or more of the active intermediate
        solutions").  Returns how many were dropped.
        """

    @abstractmethod
    def export(self) -> list[Vertex]:
        """Live vertices in pop order, without consuming the frontier.

        The parallel driver uses this to split the active set into
        shards with a deterministic ordering; tests use it to inspect
        frontier content.  Lazy-deletion implementations must exclude
        stale and tombstoned entries.
        """

    @abstractmethod
    def __len__(self) -> int: ...

    def __bool__(self) -> bool:
        return len(self) > 0

    def restore(self, vertices: list[Vertex]) -> None:
        """Refill an empty frontier from an :meth:`export` snapshot.

        ``vertices`` is in pop order, so ``restore`` must arrange that
        popping yields them in that same order.  Pushing in sequence is
        correct for every discipline except LIFO, which overrides.
        """
        for vertex in vertices:
            self.push(vertex)

    def min_bound(self) -> float | None:
        """Smallest lower bound among live vertices (None when empty).

        The best *open* bound: on an early stop it bounds how far the
        incumbent can be from optimal.  O(n) scan — called once per
        solve at most, never on the hot path.
        """
        best: float | None = None
        for v in self.iter_open():
            if best is None or v.lower_bound < best:
                best = v.lower_bound
        return best

    def iter_open(self):
        """Yield every live vertex, in no particular order.

        A single unordered O(n) pass with no sorting and no allocation
        proportional to the frontier — the cheap primitive behind
        :meth:`min_bound` and the live monitor's sampled depth profile.
        Lazy-deletion implementations must skip stale and tombstoned
        entries.  Must not be interleaved with mutations.
        """
        yield from self.export()


class _ListFrontier(Frontier):
    """Shared list-backed implementation for LIFO and FIFO."""

    def __init__(self) -> None:
        self._items: deque[Vertex] = deque()

    def push(self, vertex: Vertex) -> None:
        self._items.append(vertex)

    def prune_above(self, threshold: float) -> int:
        before = len(self._items)
        self._items = deque(
            v for v in self._items if v.lower_bound < threshold
        )
        return before - len(self._items)

    def drop_worst(self, count: int) -> int:
        if count <= 0 or not self._items:
            return 0
        # Identify the `count` largest bounds, then drop them preserving
        # the discipline's order for the survivors.
        worst = heapq.nlargest(
            count, self._items, key=lambda v: (v.lower_bound, v.seq)
        )
        doomed = {id(v) for v in worst}
        before = len(self._items)
        self._items = deque(v for v in self._items if id(v) not in doomed)
        return before - len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def iter_open(self):
        yield from self._items


class _LIFOFrontier(_ListFrontier):
    def pop(self) -> Vertex | None:
        return self._items.pop() if self._items else None

    def export(self) -> list[Vertex]:
        return list(reversed(self._items))

    def restore(self, vertices: list[Vertex]) -> None:
        # LIFO pops from the right, so pop order is reversed storage
        # order; pushing an export() back would flip the search order.
        self._items = deque(reversed(vertices))


class _FIFOFrontier(_ListFrontier):
    def pop(self) -> Vertex | None:
        return self._items.popleft() if self._items else None

    def export(self) -> list[Vertex]:
        return list(self._items)


class _LLBFrontier(Frontier):
    """Binary heap keyed by (lower bound, seq), with full lazy deletion.

    Entries are ``(lower_bound, seq, vertex)`` tuples: ``seq`` is unique
    among active vertices, so heap comparisons resolve in C on the first
    two fields and never invoke ``Vertex.__lt__``.

    No operation ever rebuilds the heap on the hot path:

    * ``prune_above`` stamps the new threshold; entries at or above it
      become *stale* and are skipped when popped.  Only a counting scan
      (no allocation, no heapify) runs at incumbent updates, so the
      *effective* content matches eager U/DBAS pruning exactly.
    * ``drop_worst`` tombstones the doomed entries by identity instead
      of filtering and re-heapifying; tombstones are reaped when the
      entries surface at the heap top.
    * ``__len__`` reports the effective (live) size, maintained
      incrementally.

    A compaction pass (filter + heapify) runs only when live entries
    fall below half the heap, bounding memory at ~2x the live set while
    keeping the amortized cost per operation O(log n).
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._threshold = float("inf")
        self._live = 0
        #: ids of vertices removed by ``drop_worst`` but still heaped.
        self._dead: set[int] = set()

    @staticmethod
    def _key(vertex: Vertex) -> tuple:
        return (vertex.lower_bound, vertex.seq, vertex)

    def push(self, vertex: Vertex) -> None:
        if vertex.lower_bound >= self._threshold:
            return
        heapq.heappush(self._heap, self._key(vertex))
        self._live += 1

    def pop(self) -> Vertex | None:
        dead = self._dead
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            v = entry[-1]
            if dead and id(v) in dead:
                dead.discard(id(v))
                continue
            if entry[0] < self._threshold:
                self._live -= 1
                return v
        self._live = 0
        dead.clear()
        return None

    def _compact(self) -> None:
        """Reap stale and tombstoned entries; amortized by the 1/2 rule."""
        dead = self._dead
        threshold = self._threshold
        self._heap = [
            e
            for e in self._heap
            if e[0] < threshold and (not dead or id(e[-1]) not in dead)
        ]
        dead.clear()
        heapq.heapify(self._heap)

    def prune_above(self, threshold: float) -> int:
        if threshold >= self._threshold:
            return 0
        # Count only newly dead entries: those below the old threshold
        # (still live, not tombstoned) but at or above the new one.
        dead = self._dead
        old = self._threshold
        if dead:
            pruned = sum(
                1
                for e in self._heap
                if threshold <= e[0] < old and id(e[-1]) not in dead
            )
        else:
            pruned = sum(
                1 for e in self._heap if threshold <= e[0] < old
            )
        self._threshold = threshold
        self._live -= pruned
        if pruned and self._live < len(self._heap) // 2:
            self._compact()
        return pruned

    def drop_worst(self, count: int) -> int:
        if count <= 0 or self._live == 0:
            return 0
        dead = self._dead
        threshold = self._threshold
        worst = heapq.nlargest(
            count,
            (
                e
                for e in self._heap
                if e[0] < threshold and id(e[-1]) not in dead
            ),
        )
        for e in worst:
            dead.add(id(e[-1]))
        self._live -= len(worst)
        if self._live < len(self._heap) // 2:
            self._compact()
        return len(worst)

    def export(self) -> list[Vertex]:
        dead = self._dead
        threshold = self._threshold
        return [
            e[-1]
            for e in sorted(
                e
                for e in self._heap
                if e[0] < threshold and (not dead or id(e[-1]) not in dead)
            )
        ]

    def __len__(self) -> int:
        return self._live

    def iter_open(self):
        dead = self._dead
        threshold = self._threshold
        for e in self._heap:
            if e[0] < threshold and (not dead or id(e[-1]) not in dead):
                yield e[-1]


class SelectionRule(ABC):
    """Factory for frontiers; also carries the rule's stop condition."""

    name: str = "?"

    #: Whether the engine should stop the whole search as soon as a
    #: selected vertex's bound reaches the pruning threshold.  True for
    #: best-first (LLB): the frontier is bound-ordered, so nothing after
    #: the first such vertex can be better.
    stop_on_bound: bool = False

    @abstractmethod
    def make_frontier(self) -> Frontier: ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LLBSelection(SelectionRule):
    """Least-lower-bound (best-first) selection."""

    name = "LLB"
    stop_on_bound = True

    def make_frontier(self) -> Frontier:
        return _LLBFrontier()


class _DepthLLBFrontier(_LLBFrontier):
    """Heap entries ordered by (bound, -level, seq): deeper ties first."""

    @staticmethod
    def _key(vertex: Vertex) -> tuple:
        return (vertex.lower_bound, -vertex.level, vertex.seq, vertex)


class DepthBiasedLLBSelection(SelectionRule):
    """Least lower bound, ties broken toward the deepest vertex (ours)."""

    name = "LLB-D"
    stop_on_bound = True

    def make_frontier(self) -> Frontier:
        return _DepthLLBFrontier()


class _HybridFrontier(Frontier):
    """Best-first under a size cap, depth-first drain above it.

    Every vertex is entered into two heaps — one keyed ``(bound, seq)``
    (best-first) and one keyed ``-seq`` (newest-first, the depth-first
    proxy: the most recently generated vertex is the deepest open one
    under a depth-biased expansion).  While the live size is at or below
    ``cap``, pops come from the best-first heap; above it they come from
    the newest-first heap, which drains the overflow down the deepest
    open subtrees (completing or pruning them) instead of discarding
    vertices.  Nothing is ever dropped, so the search stays exact — this
    replaces a transposition table's degrade-on-full behaviour with
    bounded-memory *search* per Orr & Sinnen (arXiv:1905.05568).

    Both heaps share one mutable cell per vertex; consuming or pruning a
    vertex blanks its cell, and the twin entry is skipped lazily when it
    surfaces.  A compaction pass bounds garbage at ~2x the live set.
    """

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self._best: list[tuple] = []  # (bound, seq, cell)
        self._deep: list[tuple] = []  # (-seq, cell)
        self._live = 0

    def push(self, vertex: Vertex) -> None:
        cell = [vertex]
        heapq.heappush(self._best, (vertex.lower_bound, vertex.seq, cell))
        heapq.heappush(self._deep, (-vertex.seq, cell))
        self._live += 1

    def pop(self) -> Vertex | None:
        # Both heaps hold an entry for every live vertex, so whichever
        # side the policy picks can always surface one.
        heap = self._deep if self._live > self.cap else self._best
        while heap:
            cell = heapq.heappop(heap)[-1]
            v = cell[0]
            if v is None:
                continue
            cell[0] = None
            self._live -= 1
            return v
        self._live = 0
        return None

    def _compact(self) -> None:
        self._best = [e for e in self._best if e[-1][0] is not None]
        self._deep = [e for e in self._deep if e[-1][0] is not None]
        heapq.heapify(self._best)
        heapq.heapify(self._deep)

    def prune_above(self, threshold: float) -> int:
        pruned = 0
        for bound, _seq, cell in self._best:
            if cell[0] is not None and bound >= threshold:
                cell[0] = None
                pruned += 1
        if pruned:
            self._live -= pruned
            if self._live < len(self._best) // 2:
                self._compact()
        return pruned

    def drop_worst(self, count: int) -> int:
        if count <= 0 or self._live == 0:
            return 0
        worst = heapq.nlargest(
            count, (e for e in self._best if e[-1][0] is not None)
        )
        for e in worst:
            e[-1][0] = None
        self._live -= len(worst)
        if self._live < len(self._best) // 2:
            self._compact()
        return len(worst)

    def export(self) -> list[Vertex]:
        # Pop order depends on future live counts; export the under-cap
        # (best-first) order, which restore() reproduces exactly — the
        # rebuilt frontier holds the same vertex multiset, and pop
        # behaviour is a function of the multiset and the cap only.
        return [
            e[-1][0] for e in sorted(self._best) if e[-1][0] is not None
        ]

    def __len__(self) -> int:
        return self._live

    def iter_open(self):
        for e in self._best:
            if e[-1][0] is not None:
                yield e[-1][0]


class MemoryLimitedSelection(SelectionRule):
    """Bounded-memory best-first selection (ours, after arXiv:1905.05568).

    Behaves exactly like LLB while the active set fits in ``cap``
    vertices; beyond that it switches to draining the newest (deepest)
    vertices depth-first until the set shrinks back under the cap.  No
    vertex is ever discarded, so results remain exact — only the
    exploration *order* (and hence peak memory) changes.

    ``stop_on_bound`` stays False: above the cap pops are not bound-
    ordered, so a popped vertex at the threshold proves nothing about
    the rest of the frontier; the engine's per-vertex threshold check
    prunes such pops individually instead.
    """

    name = "ML"
    stop_on_bound = False

    DEFAULT_CAP = 65536

    def __init__(self, cap: int | None = None) -> None:
        if cap is None:
            cap = self.DEFAULT_CAP
        if cap < 1:
            raise ConfigurationError(f"frontier cap must be >= 1, got {cap}")
        self.cap = cap
        # Instance name carries the cap: a different cap changes the
        # search trajectory, so checkpoint fingerprints must differ.
        self.name = f"ML@{cap}"

    def make_frontier(self) -> Frontier:
        return _HybridFrontier(self.cap)

    def __repr__(self) -> str:
        return f"MemoryLimitedSelection(cap={self.cap})"


class LIFOSelection(SelectionRule):
    """Last-in-first-out (depth-first) selection."""

    name = "LIFO"
    stop_on_bound = False

    def make_frontier(self) -> Frontier:
        return _LIFOFrontier()


class FIFOSelection(SelectionRule):
    """First-in-first-out (breadth-first) selection."""

    name = "FIFO"
    stop_on_bound = False

    def make_frontier(self) -> Frontier:
        return _FIFOFrontier()


SELECTION_RULES: dict[str, type[SelectionRule]] = {
    LLBSelection.name: LLBSelection,
    DepthBiasedLLBSelection.name: DepthBiasedLLBSelection,
    LIFOSelection.name: LIFOSelection,
    FIFOSelection.name: FIFOSelection,
    MemoryLimitedSelection.name: MemoryLimitedSelection,
}
