"""The parametrized branch-and-bound engine (Figure 1 of the paper).

The algorithm, parametrized by ``<B, S, E, F, D, L, U, BR, RB>``:

1. initialize the active set with the root vertex (an empty schedule)
   whose cost comes from the upper-bound provider ``U``;
2. repeatedly select a vertex with ``S`` (honouring its stop condition),
   branch with ``B``, bound each child with ``L``, and eliminate with
   ``E`` — goal vertices never enter the active set: the cheapest goal
   in ``DB`` either becomes the new best vertex or is pruned (Figure 2);
3. stop when the active set empties, the selection rule's stop
   condition fires, or a resource bound ``RB`` trips.

Unless the best vertex is still the root (no complete schedule at or
below the initial bound was ever found), the best vertex holds the
optimal solution — or a guaranteed/approximate one, depending on the
parametrization, which the returned :class:`BnBResult` spells out in its
:class:`SolveStatus`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..errors import ResourceLimitExceeded
from ..model.compile import CompiledProblem, compile_problem
from ..model.platform import Platform
from ..model.schedule import Schedule
from ..model.taskgraph import TaskGraph
from .elimination import pruning_threshold
from .params import BnBParameters
from .state import root_state
from .stats import SearchStats
from .trace import TraceRecorder
from .vertex import Vertex

__all__ = ["SolveStatus", "BnBResult", "BranchAndBound", "solve"]

#: How often (in explored vertices) the wall clock is consulted.
_TIME_CHECK_MASK = 0xFF


class SolveStatus(Enum):
    """What the returned solution is worth."""

    #: Proven optimal (optimal branching, BR = 0, search ran to completion).
    OPTIMAL = "optimal"
    #: Within ``BR * |L|`` of the optimum (optimal branching, BR > 0,
    #: search ran to completion).
    NEAR_OPTIMAL = "near-optimal"
    #: No guarantee (approximate branching rule DF/BF1).
    APPROXIMATE = "approximate"
    #: Stopped early because the characteristic function's target was met.
    TARGET_REACHED = "target-reached"
    #: TIMELIMIT expired; best solution found so far.
    TIMEOUT = "timeout"
    #: A storage bound dropped vertices; best solution found so far.
    TRUNCATED = "truncated"
    #: No complete schedule at or below the initial bound was found
    #: (the best vertex is still the root).
    FAILED = "failed"

    @property
    def has_guarantee(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.NEAR_OPTIMAL)


@dataclass(frozen=True)
class BnBResult:
    """Outcome of one branch-and-bound solve."""

    problem: CompiledProblem
    params: BnBParameters
    status: SolveStatus
    #: Maximum task lateness of the returned schedule (inf when FAILED
    #: with no initial solution).
    best_cost: float
    #: Task-to-processor assignment of the best schedule (None if FAILED).
    proc_of: tuple[int, ...] | None
    #: Start times of the best schedule (None if FAILED).
    start: tuple[float, ...] | None
    #: Where the returned schedule came from: "search" when the B&B
    #: improved on the initial bound, "initial-upper-bound" otherwise.
    incumbent_source: str
    #: Cost delivered by the upper-bound provider U.
    initial_upper_bound: float
    stats: SearchStats = None  # type: ignore[assignment]

    @property
    def found_solution(self) -> bool:
        return self.proc_of is not None

    @property
    def is_feasible(self) -> bool:
        """Whether the returned schedule meets every deadline."""
        return self.found_solution and self.best_cost <= 0.0

    def schedule(self) -> Schedule | None:
        """Materialize the best schedule (None when FAILED)."""
        if self.proc_of is None:
            return None
        return self.problem.make_schedule(self.proc_of, self.start)

    def summary(self) -> str:
        cost = "-" if not self.found_solution else f"{self.best_cost:g}"
        return (
            f"{self.status.value}: L_max={cost} "
            f"(U={self.initial_upper_bound:g}, from {self.incumbent_source}); "
            f"{self.stats.summary()}"
        )


class BranchAndBound:
    """Reusable solver bound to one parametrization.

    Pass a :class:`~repro.core.trace.TraceRecorder` to log the search's
    explore/incumbent events (anytime convergence profile); tracing is
    off by default and costs nothing when off.
    """

    def __init__(
        self,
        params: BnBParameters | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.params = params or BnBParameters()
        self.trace = trace

    # ------------------------------------------------------------------

    def solve_graph(self, graph: TaskGraph, platform: Platform) -> BnBResult:
        """Compile and solve a (graph, platform) pair."""
        return self.solve(compile_problem(graph, platform))

    def solve(self, problem: CompiledProblem) -> BnBResult:
        """Run the Figure 1 loop on a compiled problem."""
        params = self.params
        rb = params.resources
        bound = params.lower_bound
        elim = params.elimination
        charf = params.characteristic
        stats = SearchStats()
        stats.start_clock()

        # Step 1-2: root vertex cost from the upper bound U; the initial
        # solution (if U supplies one) is the incumbent to beat.
        incumbent_cost, initial_solution = params.upper_bound.initial(problem)
        initial_upper_bound = incumbent_cost
        if initial_solution is not None:
            best_proc: tuple[int, ...] | None = initial_solution.proc_of
            best_start: tuple[float, ...] | None = initial_solution.start
        else:
            best_proc = None
            best_start = None
        incumbent_source = "initial-upper-bound"
        threshold = pruning_threshold(incumbent_cost, params.inaccuracy)
        trace = self.trace
        if trace is not None:
            trace.on_start(incumbent_cost)

        prepared = params.branching.prepare(problem)
        frontier = params.selection.make_frontier()
        dominance = params.dominance.fresh()
        stop_on_bound = params.selection.stop_on_bound
        child_order = params.child_order
        break_symmetry = params.break_symmetry

        root = Vertex(root_state(problem), bound.evaluate(root_state(problem)), 0)
        stats.generated = 1
        seq = 1
        if not elim.should_prune(root.lower_bound, threshold):
            frontier.push(root)
            stats.peak_active = 1

        target_reached = False
        early_stop = charf.early_stop_cost

        # Step 3-10: the main loop.
        while True:
            vertex = frontier.pop()
            if vertex is None:
                break

            # Step 5: stop condition for S.  Under best-first selection a
            # popped vertex at/above the threshold ends the whole search;
            # under LIFO/FIFO it is merely skipped (it was pushed before
            # the incumbent improved).
            if elim.should_prune(vertex.lower_bound, threshold):
                if stop_on_bound:
                    break
                stats.pruned_active += 1
                continue

            stats.explored += 1
            if trace is not None:
                trace.on_explore(
                    stats.explored,
                    stats.generated,
                    vertex.level,
                    vertex.lower_bound,
                    len(frontier),
                )
            if stats.explored & _TIME_CHECK_MASK == 0 and not math.isinf(
                rb.time_limit
            ):
                if stats.time_since_start() >= rb.time_limit:
                    stats.time_limit_hit = True
                    if rb.fail_on_exhaustion:
                        raise ResourceLimitExceeded(
                            "TIMELIMIT", f"{rb.time_limit}s"
                        )
                    break

            # Step 6-7: branch and bound the children.
            placements = prepared.placements(vertex.state, break_symmetry)
            children: list[Vertex] = []
            best_goal_cost = math.inf
            best_goal_state = None
            for task, proc in placements:
                child_state = vertex.state.child(task, proc)
                child_lb = bound.evaluate(child_state)
                stats.generated += 1
                if child_state.is_goal:
                    # Goal vertices never enter the active set: track the
                    # cheapest one in DB (Figure 2, steps 1-5).
                    stats.goals_evaluated += 1
                    if child_lb < best_goal_cost:
                        best_goal_cost = child_lb
                        best_goal_state = child_state
                    continue
                if not charf.admits(child_state, child_lb):
                    stats.pruned_infeasible += 1
                    continue
                if dominance.is_dominated(child_state):
                    stats.pruned_dominated += 1
                    continue
                children.append(Vertex(child_state, child_lb, seq))
                seq += 1

            # Figure 2 steps 1-5: incumbent update from the cheapest goal.
            if best_goal_state is not None and best_goal_cost < incumbent_cost:
                incumbent_cost = best_goal_cost
                best_proc = best_goal_state.proc_of
                best_start = best_goal_state.start
                incumbent_source = "search"
                stats.incumbent_updates += 1
                if trace is not None:
                    trace.on_incumbent(stats.generated, incumbent_cost)
                threshold = pruning_threshold(incumbent_cost, params.inaccuracy)
                # Figure 2 step 6, AS half: sweep the active set.
                if elim.prunes_active_set():
                    stats.pruned_active += frontier.prune_above(threshold)
                if early_stop is not None and incumbent_cost <= early_stop:
                    target_reached = True
                    break

            # Figure 2 step 6, DB half: eliminate children.
            kept = []
            for child in children:
                if elim.should_prune(child.lower_bound, threshold):
                    stats.pruned_children += 1
                else:
                    kept.append(child)

            # RB: MAXSZDB caps the child set (keep the best bounds).
            if len(kept) > rb.max_children:
                if rb.fail_on_exhaustion:
                    raise ResourceLimitExceeded(
                        "MAXSZDB", f"{len(kept)} children"
                    )
                kept.sort(key=lambda v: v.lower_bound)
                stats.dropped_resource += len(kept) - int(rb.max_children)
                stats.truncated = True
                del kept[int(rb.max_children):]

            # Step 9: move the survivors into AS.
            if child_order == "best-last":
                kept.sort(key=lambda v: -v.lower_bound)
            elif child_order == "best-first":
                kept.sort(key=lambda v: v.lower_bound)
            for child in kept:
                frontier.push(child)

            active = len(frontier)
            if active > stats.peak_active:
                stats.peak_active = active

            # RB: MAXSZAS disposes of the worst active vertices.
            if active > rb.max_active:
                if rb.fail_on_exhaustion:
                    raise ResourceLimitExceeded("MAXSZAS", f"{active} active")
                dropped = frontier.drop_worst(active - int(rb.max_active))
                stats.dropped_resource += dropped
                stats.truncated = True

            # RB extension: generated-vertex cap.
            if stats.generated >= rb.max_vertices:
                if rb.fail_on_exhaustion:
                    raise ResourceLimitExceeded(
                        "MAXVERT", f"{stats.generated} generated"
                    )
                stats.truncated = True
                break

        stats.stop_clock()
        status = self._status(
            params, stats, target_reached, best_proc is not None
        )
        return BnBResult(
            problem=problem,
            params=params,
            status=status,
            best_cost=incumbent_cost if best_proc is not None else math.inf,
            proc_of=best_proc,
            start=best_start,
            incumbent_source=incumbent_source,
            initial_upper_bound=initial_upper_bound,
            stats=stats,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _status(
        params: BnBParameters,
        stats: SearchStats,
        target_reached: bool,
        found: bool,
    ) -> SolveStatus:
        if not found:
            return SolveStatus.FAILED
        if stats.time_limit_hit:
            return SolveStatus.TIMEOUT
        if stats.truncated:
            return SolveStatus.TRUNCATED
        if target_reached:
            return SolveStatus.TARGET_REACHED
        if not params.branching.guarantees_optimal:
            return SolveStatus.APPROXIMATE
        if params.inaccuracy > 0:
            return SolveStatus.NEAR_OPTIMAL
        return SolveStatus.OPTIMAL


def solve(
    graph: TaskGraph,
    platform: Platform,
    params: BnBParameters | None = None,
) -> BnBResult:
    """One-shot convenience wrapper: compile and solve."""
    return BranchAndBound(params).solve_graph(graph, platform)
