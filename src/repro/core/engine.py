"""The parametrized branch-and-bound engine (Figure 1 of the paper).

The algorithm, parametrized by ``<B, S, E, F, D, L, U, BR, RB>``:

1. initialize the active set with the root vertex (an empty schedule)
   whose cost comes from the upper-bound provider ``U``;
2. repeatedly select a vertex with ``S`` (honouring its stop condition),
   branch with ``B``, bound each child with ``L``, and eliminate with
   ``E`` — goal vertices never enter the active set: the cheapest goal
   in ``DB`` either becomes the new best vertex or is pruned (Figure 2);
3. stop when the active set empties, the selection rule's stop
   condition fires, or a resource bound ``RB`` trips.

Unless the best vertex is still the root (no complete schedule at or
below the initial bound was ever found), the best vertex holds the
optimal solution — or a guaranteed/approximate one, depending on the
parametrization, which the returned :class:`BnBResult` spells out in its
:class:`SolveStatus`.

Observability
-------------
The loop exposes hook points for the :mod:`repro.obs` subsystem via an
:class:`~repro.obs.Observability` bundle: a structured event sink
(start/explore/incumbent/goal/prune/resource/summary), a per-phase
profiler, a metrics registry and a progress heartbeat.  Every hook is
guarded by an ``is not None`` check on a local, so a solve with
observability off runs the same loop it always did.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from enum import Enum
from operator import attrgetter

from ..errors import (
    CheckpointError,
    ConfigurationError,
    ResourceLimitExceeded,
)
from ..model.compile import CompiledProblem, compile_problem
from ..model.platform import Platform
from ..model.schedule import Schedule
from ..model.taskgraph import TaskGraph
from ..obs import Observability
from ..obs.metrics import (
    DEFAULT_GAP_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
)
from ..obs.profile import PhaseBreakdown
from .checkpoint import (
    Checkpointer,
    SearchCheckpoint,
    StopToken,
    problem_fingerprint,
)
from . import _native
from .arena import ArenaState
from .elimination import NoElimination, UDBASElimination, pruning_threshold
from .expand import BatchExpander, FusedExpander, make_batch_expander
from .params import BnBParameters
from .resources import current_rss_bytes
from .selection import (
    _DepthLLBFrontier,
    _FIFOFrontier,
    _LIFOFrontier,
    _LLBFrontier,
)
from .stats import SearchStats
from .trace import TraceRecorder
from .vertex import Vertex

__all__ = [
    "SolveStatus",
    "BnBResult",
    "BranchAndBound",
    "SubtreeSpec",
    "SubtreeDispatcher",
    "solve",
]

#: How often (in explored vertices) the wall clock is consulted.
_TIME_CHECK_MASK = 0xFF

#: Frontier disciplines the native chunk driver replicates exactly.
_NATIVE_FRONTIER_KINDS = {
    _LIFOFrontier: 0,
    _FIFOFrontier: 1,
    _LLBFrontier: 2,
    _DepthLLBFrontier: 3,
}

_CHILD_ORDER_CODES = {"generation": 0, "best-last": 1, "best-first": 2}

#: How often (in explored vertices) the progress reporter is consulted.
_PROGRESS_CHECK_MASK = 0x3F

#: How often (in explored vertices) a shared-incumbent channel is polled.
#: Frequent enough that a remote improvement propagates within tens of
#: microseconds of work, rare enough that the lock never shows up in a
#: profile (one acquisition per 64 explored vertices).
_BOUND_POLL_MASK = 0x3F

#: C-level sort key for child ordering (avoids a lambda per comparison).
_BY_BOUND = attrgetter("lower_bound")


class SolveStatus(Enum):
    """What the returned solution is worth."""

    #: Proven optimal (optimal branching, BR = 0, search ran to completion).
    OPTIMAL = "optimal"
    #: Within ``BR * |L|`` of the optimum (optimal branching, BR > 0,
    #: search ran to completion).
    NEAR_OPTIMAL = "near-optimal"
    #: No guarantee (approximate branching rule DF/BF1).
    APPROXIMATE = "approximate"
    #: Stopped early because the characteristic function's target was met.
    TARGET_REACHED = "target-reached"
    #: TIMELIMIT expired; best solution found so far.
    TIMEOUT = "timeout"
    #: SIGINT/SIGTERM (or a :class:`~repro.core.checkpoint.StopToken`)
    #: stopped the loop cooperatively; best solution found so far.
    INTERRUPTED = "interrupted"
    #: The MEMLIMIT resident-set ceiling tripped; best solution so far.
    MEMORY = "memory"
    #: A storage bound dropped vertices; best solution found so far.
    TRUNCATED = "truncated"
    #: No complete schedule at or below the initial bound was found
    #: (the best vertex is still the root).
    FAILED = "failed"

    @property
    def has_guarantee(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.NEAR_OPTIMAL)


@dataclass(frozen=True)
class BnBResult:
    """Outcome of one branch-and-bound solve."""

    problem: CompiledProblem
    params: BnBParameters
    status: SolveStatus
    #: Maximum task lateness of the returned schedule (inf when FAILED
    #: with no initial solution).
    best_cost: float
    #: Task-to-processor assignment of the best schedule (None if FAILED).
    proc_of: tuple[int, ...] | None
    #: Start times of the best schedule (None if FAILED).
    start: tuple[float, ...] | None
    #: Where the returned schedule came from: "search" when the B&B
    #: improved on the initial bound, "initial-upper-bound" otherwise.
    incumbent_source: str
    #: Cost delivered by the upper-bound provider U.
    initial_upper_bound: float
    #: Counters and timing for the run (always set by the engine).
    stats: SearchStats
    #: Per-phase timing, present when a profiler was attached.
    profile: PhaseBreakdown | None = None
    #: Smallest lower bound among vertices still open when an early stop
    #: (interrupt/timeout/memory, or a MAXVERT cap with nothing dropped)
    #: ended the search; None when the search completed or when dropped
    #: vertices make the remaining bounds meaningless.
    open_lower_bound: float | None = None
    #: Where the final snapshot was written, when checkpointing was on.
    checkpoint_path: str | None = None

    @property
    def found_solution(self) -> bool:
        return self.proc_of is not None

    @property
    def optimality_gap(self) -> float | None:
        """Upper bound on ``best_cost - optimum`` for early-stopped runs.

        Every unexplored solution lies below some open vertex, so the
        optimum is at least ``min(open_lower_bound, best_cost)``; the
        gap is how far above that floor the incumbent sits.  ``None``
        when no bound can be claimed (no solution, or no open-bound
        information — completed runs express their guarantee through
        ``status`` instead).
        """
        if not self.found_solution or self.open_lower_bound is None:
            return None
        return max(0.0, self.best_cost - self.open_lower_bound)

    @property
    def is_feasible(self) -> bool:
        """Whether the returned schedule meets every deadline."""
        return self.found_solution and self.best_cost <= 0.0

    def schedule(self) -> Schedule | None:
        """Materialize the best schedule (None when FAILED)."""
        if self.proc_of is None:
            return None
        return self.problem.make_schedule(self.proc_of, self.start)

    def summary(self) -> str:
        cost = "-" if not self.found_solution else f"{self.best_cost:g}"
        base = (
            f"{self.status.value}: L_max={cost} "
            f"(U={self.initial_upper_bound:g}, from {self.incumbent_source}); "
            f"{self.stats.summary()}"
        )
        gap = self.optimality_gap
        if gap is not None:
            base += f"\ngap: <= {gap:g} (best open bound {self.open_lower_bound:g})"
        if self.checkpoint_path is not None:
            base += f"\ncheckpoint: {self.checkpoint_path}"
        if self.profile is not None:
            return f"{base}\n{self.profile.summary()}"
        return base


def _json_num(value: float) -> float | None:
    """JSON has no inf/nan; summaries carry None instead."""
    return None if (math.isinf(value) or math.isnan(value)) else value


@dataclass(frozen=True)
class SubtreeSpec:
    """Restart point for a search rooted at a mid-tree vertex.

    The parallel driver ships one of these (plus the compiled problem)
    to a worker process, which resumes the search exactly where the
    coordinating search left off: the root vertex is ``state`` with the
    already-computed ``lower_bound``, the incumbent to beat is
    ``incumbent_cost`` (the upper-bound provider is *not* consulted —
    that already happened once, in the coordinator), and at most
    ``max_generated`` further vertices may be generated before the
    MAXVERT semantics kick in.  The sub-search's ``generated`` counter
    excludes the root (the coordinator already counted it when it was
    generated as a child), so shard-summed counters line up with a
    single sequential run.
    """

    state: object  # SearchState; untyped here to avoid a hot-path import
    lower_bound: float
    incumbent_cost: float
    max_generated: float = math.inf


class SubtreeDispatcher:
    """Hook for delegating deep subtrees to external workers.

    When attached to :meth:`BranchAndBound.solve`, every popped vertex
    at ``depth`` or deeper is *resolved* through the dispatcher instead
    of being expanded inline: the dispatcher returns the finished
    sub-search's :class:`BnBResult` (typically produced by a worker
    process running :class:`SubtreeSpec` above) and the engine merges
    its statistics and incumbent as if it had explored the subtree
    itself.  ``offer`` lets the dispatcher start working on a subtree
    speculatively the moment its root is pushed; ``notify_incumbent``
    tells it the incumbent improved, so in-flight speculation based on a
    stale bound can be restarted.  The base class is a no-op scaffold —
    see :mod:`repro.core.parallel` for the real implementations.
    """

    #: Vertices at this level or deeper are dispatched, not expanded.
    depth: int = 1

    def offer(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> None:
        """A future shard was just pushed; speculation may begin."""

    def notify_incumbent(self, cost: float) -> None:
        """The coordinator's incumbent improved to ``cost``."""

    def resolve(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> BnBResult:
        """Return the completed sub-search rooted at ``vertex``.

        ``incumbent_cost`` is the incumbent at the moment the vertex was
        popped and ``budget`` the remaining generated-vertex allowance —
        together they pin down the sub-search a sequential run would
        have performed, so implementations can check speculative results
        against them and re-run only on a mismatch.
        """
        raise NotImplementedError


def _final_metrics(
    metrics: MetricsRegistry, stats: SearchStats, incumbent_cost: float
) -> None:
    """Fold one run's :class:`SearchStats` into the standard counters.

    Counters accumulate across solves sharing a registry (Prometheus
    counter semantics); gauges reflect the most recent run.
    """
    c = metrics.counter
    c("bnb_generated_vertices_total",
      "Vertices created by branching (the paper's cost measure)",
      ).inc(stats.generated)
    c("bnb_explored_vertices_total",
      "Vertices selected from the active set and branched").inc(stats.explored)
    c("bnb_pruned_children_total",
      "Children discarded by the elimination rule E").inc(stats.pruned_children)
    c("bnb_pruned_active_total",
      "Active vertices swept when the incumbent improved").inc(
          stats.pruned_active)
    c("bnb_pruned_dominated_total",
      "Children discarded by the dominance rule D").inc(stats.pruned_dominated)
    c("bnb_pruned_duplicate_total",
      "Children discarded as duplicate states (transposition hits)").inc(
          stats.pruned_duplicate)
    c("bnb_pruned_infeasible_total",
      "Children discarded by the characteristic function F").inc(
          stats.pruned_infeasible)
    c("bnb_dropped_resource_total",
      "Vertices dropped by MAXSZAS / MAXSZDB overflow").inc(
          stats.dropped_resource)
    c("bnb_goals_evaluated_total",
      "Complete schedules compared to the incumbent").inc(stats.goals_evaluated)
    c("bnb_incumbent_updates_total",
      "Times the incumbent improved").inc(stats.incumbent_updates)
    c("bnb_solves_total", "Branch-and-bound runs recorded").inc()
    g = metrics.gauge
    g("bnb_peak_active_set_size",
      "Largest active-set size of the last run").set(stats.peak_active)
    g("bnb_elapsed_seconds", "Wall-clock of the last run").set(stats.elapsed)
    if not math.isinf(incumbent_cost):
        g("bnb_incumbent_cost",
          "Best maximum lateness found").set(incumbent_cost)


def _tt_metrics(metrics: MetricsRegistry, tel: dict[str, int]) -> None:
    """Fold transposition-table telemetry into the metrics registry."""
    c = metrics.counter
    for key, help_text in (
        ("tt_hits", "Transposition probes answered by a stored duplicate"),
        ("tt_misses", "Transposition probes that found no duplicate"),
        ("tt_inserts", "States recorded in the transposition table"),
        ("tt_evictions", "Stored states displaced by the replacement policy"),
        ("tt_rejects", "Insertions refused by the depth-preferred policy"),
        ("tt_collisions", "Equal 64-bit signatures with differing payloads"),
    ):
        if key in tel:
            c(f"bnb_{key}_total", help_text).inc(tel[key])
    g = metrics.gauge
    if "tt_filled" in tel:
        g("bnb_tt_filled_entries",
          "Occupied transposition slots after the last run").set(
              tel["tt_filled"])
    if "tt_capacity" in tel:
        g("bnb_tt_capacity_entries",
          "Total transposition slots (memory bound / entry size)").set(
              tel["tt_capacity"])


class BranchAndBound:
    """Reusable solver bound to one parametrization.

    Pass a :class:`~repro.core.trace.TraceRecorder` to log the search's
    explore/incumbent events (anytime convergence profile), and/or an
    :class:`~repro.obs.Observability` bundle for streamed event traces,
    phase profiling, metrics and progress heartbeats; both are off by
    default and cost nothing when off.

    ``fused`` selects the expansion path: ``True`` forces the fused
    :class:`~repro.core.expand.FusedExpander` hot path (incremental
    bounds, admission pre-check, scratch buffers), ``False`` forces the
    reference per-child loop, and ``None`` (the default) uses the fused
    path exactly when no event sink or profiler is attached — those two
    consumers observe per-child branch/bound granularity that the fused
    path folds into a single ``expand`` phase.  Both paths produce
    identical results and statistics (``tests/test_core_expand.py``).
    """

    def __init__(
        self,
        params: BnBParameters | None = None,
        trace: TraceRecorder | None = None,
        obs: Observability | None = None,
        fused: bool | None = None,
    ) -> None:
        self.params = params or BnBParameters()
        self.trace = trace
        self.obs = obs
        self.fused = fused

    # ------------------------------------------------------------------

    def solve_graph(self, graph: TaskGraph, platform: Platform) -> BnBResult:
        """Compile and solve a (graph, platform) pair."""
        return self.solve(compile_problem(graph, platform))

    def solve(
        self,
        problem: CompiledProblem,
        *,
        subtree: SubtreeSpec | None = None,
        dispatcher: SubtreeDispatcher | None = None,
        bound_channel=None,
        checkpoint: Checkpointer | None = None,
        resume: SearchCheckpoint | None = None,
        stop: StopToken | None = None,
    ) -> BnBResult:
        """Run the Figure 1 loop on a compiled problem.

        The keyword hooks drive the parallel decomposition in
        :mod:`repro.core.parallel` and default to off (the sequential
        loop is unchanged when they are ``None``):

        * ``subtree`` — resume from a mid-tree state instead of the
          empty schedule (see :class:`SubtreeSpec`); used by worker
          processes.
        * ``dispatcher`` — delegate vertices at ``dispatcher.depth`` or
          deeper to a :class:`SubtreeDispatcher`; used by the
          coordinator.
        * ``bound_channel`` — an object with ``poll() -> float`` and
          ``publish(cost)``: the incumbent is published on every
          improvement and polled every 64 explored vertices, so
          concurrent searches share pruning power.  An externally
          polled bound tightens the threshold but never becomes the
          returned schedule (the worker that published it owns that).

        The fault-tolerance hooks (see :mod:`repro.core.checkpoint`)
        likewise default to off:

        * ``checkpoint`` — a :class:`~repro.core.checkpoint.Checkpointer`
          that periodically snapshots the search (and always writes a
          final snapshot on an early stop).
        * ``resume`` — a loaded
          :class:`~repro.core.checkpoint.SearchCheckpoint` to continue
          from; its fingerprint must match this ⟨problem, parameters⟩
          pair.
        * ``stop`` — a :class:`~repro.core.checkpoint.StopToken`; when
          set (e.g. by a signal handler), the loop stops at the next
          iteration and returns an ``INTERRUPTED`` anytime result.
        """
        params = self.params
        if (checkpoint is not None or resume is not None) and (
            subtree is not None or dispatcher is not None
        ):
            raise ConfigurationError(
                "checkpoint/resume cannot be combined with the parallel "
                "decomposition hooks (subtree/dispatcher) — checkpoint "
                "the coordinating run instead"
            )
        if resume is not None:
            expected = problem_fingerprint(problem, params)
            if resume.fingerprint != expected:
                raise CheckpointError(
                    "checkpoint does not match this problem/parametrization "
                    f"(snapshot fingerprint {resume.fingerprint[:12]}…, "
                    f"expected {expected[:12]}…); only resource bounds RB "
                    "may differ between the checkpointing and resuming runs"
                )
            if checkpoint is not None:
                checkpoint.resume_from(resume)
        rb = params.resources
        bound = params.lower_bound
        elim = params.elimination
        charf = params.characteristic
        stats = (
            SearchStats.from_dict(resume.stats)
            if resume is not None
            else SearchStats()
        )

        # Observability components, hoisted to locals for the hot loop.
        obs = self.obs
        user_sink = obs.sink if obs is not None else None
        live = obs.live if obs is not None else None
        # The live monitor rides the event stream for low-frequency
        # kinds (its sink rejects explore/prune/goal before payloads
        # are built); the fused-path decision below deliberately keys
        # off ``user_sink`` so attaching a monitor never changes the
        # search's performance class.
        sink = user_sink if live is None else live.compose_sink(user_sink)
        # A sink that rejects every sampled kind *statically* (the live
        # monitor's — no per-event state backs the answer) is dropped
        # from the per-vertex emit checks entirely; low-frequency events
        # still go through ``sink``.  Composites wrapping a user sink do
        # not set the flag, so stateful sampling still sees every event.
        hot_sink = (
            None
            if sink is None or getattr(sink, "rejects_sampled_kinds", False)
            else sink
        )
        profiler = obs.profiler if obs is not None else None
        metrics = obs.metrics if obs is not None else None
        progress = obs.progress if obs is not None else None
        trace = self.trace
        telem = (
            trace is not None
            or hot_sink is not None
            or metrics is not None
        )

        if profiler is not None:
            _pc = time.perf_counter
            ptot = profiler.totals
            pcnt = profiler.counts
            mark = _pc()

            def lap(phase: str, _pc=_pc) -> None:
                # Contiguous timestamps: each span ends where the next
                # begins, so phase totals tile the wall clock.
                nonlocal mark
                now = _pc()
                ptot[phase] = ptot.get(phase, 0.0) + (now - mark)
                pcnt[phase] = pcnt.get(phase, 0) + 1
                mark = now
        else:
            lap = None

        if metrics is not None:
            m_active = metrics.gauge(
                "bnb_active_set_size", "Active-set size at last explore"
            )
            h_gap = metrics.histogram(
                "bnb_lower_bound_gap",
                "Incumbent cost minus selected vertex's lower bound",
                buckets=DEFAULT_GAP_BUCKETS,
            )
            h_active = metrics.histogram(
                "bnb_active_set_size_distribution",
                "Active-set size observed at each explored vertex",
                buckets=DEFAULT_SIZE_BUCKETS,
            )

        channel = bound_channel
        dispatch_depth = dispatcher.depth if dispatcher is not None else 0

        stats.start_clock()
        try:
            # Step 1-2: root vertex cost from the upper bound U; the
            # initial solution (if U supplies one) is the incumbent to beat.
            if resume is not None:
                # The incumbent (and everything around it) travelled
                # with the snapshot; U already ran in the original run.
                incumbent_cost = resume.incumbent_cost
                initial_solution = None
                initial_upper_bound = resume.initial_upper_bound
                best_proc: tuple[int, ...] | None = resume.best_proc
                best_start: tuple[float, ...] | None = resume.best_start
                found_cost = resume.found_cost
                incumbent_source = resume.incumbent_source
            else:
                if subtree is not None:
                    # Sub-search: the incumbent travelled with the spec;
                    # the upper-bound provider already ran in the
                    # coordinator.
                    incumbent_cost = subtree.incumbent_cost
                    initial_solution = None
                else:
                    incumbent_cost, initial_solution = (
                        params.upper_bound.initial(problem)
                    )
                initial_upper_bound = incumbent_cost
                if initial_solution is not None:
                    best_proc = initial_solution.proc_of
                    best_start = initial_solution.start
                else:
                    best_proc = None
                    best_start = None
                # ``found_cost`` is the cost of the schedule behind
                # best_proc/best_start; it trails ``incumbent_cost`` only
                # when an externally polled bound tightened the threshold.
                found_cost = incumbent_cost
                incumbent_source = "initial-upper-bound"
            threshold = pruning_threshold(incumbent_cost, params.inaccuracy)
            if trace is not None:
                trace.on_start(incumbent_cost)
            if progress is not None:
                progress.start()
            if sink is not None and sink.accepts("start"):
                sink.emit(
                    "start",
                    {
                        "n": problem.n,
                        "m": problem.m,
                        "initial_bound": _json_num(incumbent_cost),
                        "params": params.describe(),
                    },
                )

            prepared = params.branching.prepare(problem)
            frontier = params.selection.make_frontier()
            dominance = params.dominance.fresh()
            if (
                getattr(params.branching, "duplicate_free", False)
                and not dominance.is_noop
            ):
                raise ConfigurationError(
                    f"branching rule {params.branching.name!r} generates "
                    f"each state exactly once; a dominance/duplicate "
                    f"layer (D={params.dominance.name!r}) is redundant "
                    f"and its placement-keyed stores would unsoundly "
                    f"collapse distinct allocation prefixes"
                )
            stop_on_bound = params.selection.stop_on_bound
            child_order = params.child_order
            break_symmetry = params.break_symmetry

            use_fused = self.fused
            if use_fused is None:
                use_fused = user_sink is None and profiler is None
            expander = None
            if params.engine != "object" and self.fused is not False:
                # Array engine: arena-backed batch expansion behind the
                # same expand() seam.  The factory returns None for
                # configurations it cannot replicate bit-for-bit; those
                # fall back to the scalar paths below.
                expander = make_batch_expander(
                    problem, prepared, bound, charf, dominance, elim,
                    break_symmetry,
                )
            if expander is None and use_fused and prepared.fused_compatible:
                expander = FusedExpander(
                    problem, prepared, bound, charf, dominance, elim,
                    break_symmetry,
                )

            fused_precheck = expander is not None and expander.precheck
            # U/DBAS's test is a bare comparison; inlining it in the pop
            # loop saves a method call per explored vertex.
            fast_udbas = type(elim) is UDBASElimination
            should_prune = elim.should_prune
            max_children = rb.max_children
            max_active = rb.max_active
            max_vertices = rb.max_vertices
            untimed = math.isinf(rb.time_limit)

            if resume is not None:
                # Refill the active set from the snapshot.  States are
                # re-bound to the live problem object (unpickling gave
                # them an equal but distinct recompilation); vertices
                # are rebuilt without the fused path's incremental
                # vectors, which the expander recomputes identically.
                restored = []
                for rs, rlb, rseq in resume.frontier:
                    rs.problem = problem
                    restored.append(Vertex(rs, rlb, rseq))
                frontier.restore(restored)
                seq = resume.seq
                if len(restored) > stats.peak_active:
                    stats.peak_active = len(restored)
                if sink is not None and sink.accepts("resume"):
                    sink.emit(
                        "resume",
                        {
                            "version": resume.version,
                            "frontier": len(restored),
                            "generated": stats.generated,
                            "explored": stats.explored,
                            "incumbent": _json_num(incumbent_cost),
                        },
                    )
                if metrics is not None:
                    metrics.counter(
                        "bnb_checkpoint_loaded_total",
                        "Search snapshots resumed from",
                    ).inc()
            elif subtree is not None:
                # Resume mid-tree.  The root was generated (and counted)
                # by the coordinator, so the local generated counter
                # starts at zero and the local MAXVERT allowance is the
                # coordinator's remaining budget.
                if subtree.max_generated < max_vertices:
                    max_vertices = subtree.max_generated
                rs = subtree.state
                if expander is not None:
                    root = expander.root_from(rs, subtree.lower_bound)
                else:
                    root = Vertex(rs, subtree.lower_bound, 0)
                stats.generated = 0
                seq = 1
                if not elim.should_prune(root.lower_bound, threshold):
                    frontier.push(root)
                    stats.peak_active = 1
            else:
                if expander is not None:
                    root = expander.root()
                else:
                    rs = prepared.make_root()
                    root = Vertex(rs, bound.evaluate(rs), 0)
                stats.generated = 1
                seq = 1
                if not elim.should_prune(root.lower_bound, threshold):
                    frontier.push(root)
                    stats.peak_active = 1

            target_reached = False
            early_stop = charf.early_stop_cost

            # Fault-tolerance plumbing: all hoisted to locals so the
            # default configuration pays one None-check per iteration.
            fingerprint = None
            if checkpoint is not None:
                fingerprint = (
                    resume.fingerprint
                    if resume is not None
                    else problem_fingerprint(problem, params)
                )
            stop_is_set = stop.is_set if stop is not None else None
            unmemed = math.isinf(rb.max_memory_bytes)
            #: The in-hand vertex at an early stop: popped, unexpanded,
            #: so still part of the open search (snapshots and the open
            #: lower bound must include it).
            pending_vertex = None

            def _snapshot() -> SearchCheckpoint:
                in_hand = (
                    [pending_vertex] if pending_vertex is not None else []
                )
                counters = stats.as_dict()
                counters["elapsed"] = stats.time_since_start()
                return SearchCheckpoint(
                    fingerprint=fingerprint,
                    frontier=[
                        (v.state, v.lower_bound, v.seq)
                        for v in in_hand + frontier.export()
                    ],
                    seq=seq,
                    incumbent_cost=incumbent_cost,
                    found_cost=found_cost,
                    best_proc=best_proc,
                    best_start=best_start,
                    incumbent_source=incumbent_source,
                    initial_upper_bound=initial_upper_bound,
                    stats=counters,
                )

            def _limit_exceeded(which: str, detail: str) -> None:
                # fail_on_exhaustion path: raise, but hand the caller
                # the anytime result it would otherwise have received.
                stats.stop_clock()
                if best_proc is None:
                    pstatus = SolveStatus.FAILED
                elif which == "TIMELIMIT":
                    pstatus = SolveStatus.TIMEOUT
                elif which == "MEMLIMIT":
                    pstatus = SolveStatus.MEMORY
                else:
                    pstatus = SolveStatus.TRUNCATED
                partial = BnBResult(
                    problem=problem,
                    params=params,
                    status=pstatus,
                    best_cost=(
                        found_cost if best_proc is not None else math.inf
                    ),
                    proc_of=best_proc,
                    start=best_start,
                    incumbent_source=incumbent_source,
                    initial_upper_bound=initial_upper_bound,
                    stats=stats,
                )
                raise ResourceLimitExceeded(which, detail, partial=partial)

            if lap is not None:
                lap("setup")

            # Array engine, native tier: hand the whole pop→expand→push
            # loop to the compiled chunk driver when the configuration
            # has no per-vertex hooks it cannot replicate.  The driver
            # returns at growth points, periodic time/memory checks,
            # resource caps and branching errors; everything else about
            # the search (counters, seq, incumbent, order) is
            # bit-identical to the loop below.
            driver = None
            driver_open_min = None
            if (
                type(expander) is BatchExpander
                and params.engine == "array"
                and resume is None
                and subtree is None
                and dispatcher is None
                and checkpoint is None
                and stop is None
                and channel is None
                and sink is None
                and not telem
                and live is None
                and progress is None
                and lap is None
                and early_stop is None
                and math.isinf(max_children)
                and math.isinf(max_active)
                and problem.uniform_delay is not None
            ):
                fr_kind = _NATIVE_FRONTIER_KINDS.get(type(frontier))
                if fr_kind is not None and _native.native_available():
                    entries = []
                    for v in frontier.export():
                        st = v.state
                        if (
                            type(st) is not ArenaState
                            or st.arena is not expander.arena
                        ):
                            st = expander._ensure_row(v)
                        st.disown()
                        entries.append(
                            (v.lower_bound, v.seq, st.slot, st.level)
                        )
                    driver = _native.NativeDriver(
                        expander.arena,
                        expander.ap,
                        frontier_kind=fr_kind,
                        bound_kind=expander.bound_kind,
                        child_order=_CHILD_ORDER_CODES[child_order],
                        elim_none=type(elim) is NoElimination,
                        stop_on_bound=stop_on_bound,
                        break_symmetry=break_symmetry,
                        fixed_order=getattr(prepared, "order", None),
                        entries=entries,
                        seq=seq,
                        threshold=threshold,
                        incumbent=incumbent_cost,
                        found_cost=found_cost,
                        inaccuracy=params.inaccuracy,
                        max_vertices=max_vertices,
                        do_checks=not (untimed and unmemed),
                        stats=stats,
                    )
                    # The exported vertices now belong to the driver;
                    # give the loop below a fresh empty frontier so the
                    # post-loop accounting (len/min_bound) stays clean.
                    frontier = params.selection.make_frontier()

            if driver is not None:
                limit_hit = None
                code = driver.step()
                while True:
                    if (
                        code == _native.ST_GROW_ARENA
                        or code == _native.ST_GROW_FRONT
                    ):
                        driver.grow(code)
                        code = driver.step()
                        continue
                    if code == _native.ST_CHECK:
                        # Periodic boundary: the in-hand vertex is
                        # parked exactly where the loop below holds it
                        # for these same checks.
                        driver.sync_stats(stats)
                        if (
                            not untimed
                            and stats.time_since_start() >= rb.time_limit
                        ):
                            stats.time_limit_hit = True
                            limit_hit = ("TIMELIMIT", f"{rb.time_limit}s")
                        elif (
                            not unmemed
                            and current_rss_bytes() >= rb.max_memory_bytes
                        ):
                            stats.memory_limit_hit = True
                            limit_hit = (
                                "MEMLIMIT",
                                f"rss >= {rb.max_memory_bytes:g}B",
                            )
                        else:
                            code = driver.step()
                            continue
                    break

                # Drain the driver's state back into the engine locals.
                driver.sync_stats(stats)
                seq = driver.seq
                threshold = driver.threshold
                incumbent_cost = driver.incumbent
                if driver.best_found:
                    found_cost = driver.found_cost
                    best_proc, best_start = driver.best_schedule()
                    incumbent_source = "search"
                driver_open_min = driver.open_min_bound()
                if limit_hit is not None:
                    pend = driver.take_pending()
                    if pend is not None:
                        pslot, plb, pseq = pend
                        pending_vertex = Vertex(
                            ArenaState(expander.arena, pslot), plb, pseq
                        )
                    if rb.fail_on_exhaustion:
                        _limit_exceeded(*limit_hit)
                elif code == _native.ST_MAXVERT:
                    if rb.fail_on_exhaustion:
                        _limit_exceeded(
                            "MAXVERT", f"{stats.generated} generated"
                        )
                    stats.truncated = True
                elif code == _native.ST_ERR_NOT_READY:
                    # Replay the branching call on the offending vertex
                    # so the identical ConfigurationError surfaces.
                    prepared.branch_tasks(
                        ArenaState(expander.arena, driver.err_slot())
                    )
                    raise ConfigurationError(
                        "native driver flagged an unready fixed-order task"
                    )
                # ST_DONE / ST_BOUNDSTOP: search complete; the empty
                # frontier below ends the Python loop immediately.

            # Step 3-10: the main loop.
            while True:
                vertex = frontier.pop()
                if vertex is None:
                    if lap is not None:
                        lap("select")
                    break

                # Step 5: stop condition for S.  Under best-first selection
                # a popped vertex at/above the threshold ends the whole
                # search; under LIFO/FIFO it is merely skipped (it was
                # pushed before the incumbent improved).
                if (
                    (vertex.lower_bound >= threshold)
                    if fast_udbas
                    else should_prune(vertex.lower_bound, threshold)
                ):
                    if stop_on_bound:
                        if lap is not None:
                            lap("select")
                        break
                    stats.pruned_active += 1
                    if hot_sink is not None and hot_sink.accepts("prune"):
                        hot_sink.emit(
                            "prune",
                            {"cause": "stale-active",
                             "lb": vertex.lower_bound,
                             "level": vertex.level},
                        )
                    if lap is not None:
                        lap("select")
                    continue

                # Cooperative stop: checked with the vertex in hand but
                # untouched, so the snapshot/open-bound accounting below
                # still sees it as part of the open search.
                if stop_is_set is not None and stop_is_set():
                    stats.interrupted = True
                    pending_vertex = vertex
                    if sink is not None and sink.accepts("resource"):
                        sink.emit(
                            "resource",
                            {"kind": "INTERRUPTED",
                             "detail": stop.reason or ""},
                        )
                    if lap is not None:
                        lap("select")
                    break

                if checkpoint is not None and checkpoint.due(stats.explored):
                    pending_vertex = vertex
                    snap_path = checkpoint.write(_snapshot())
                    pending_vertex = None
                    if sink is not None and sink.accepts("checkpoint"):
                        sink.emit(
                            "checkpoint",
                            {
                                "version": checkpoint.version - 1,
                                "explored": stats.explored,
                                "generated": stats.generated,
                                "active": len(frontier) + 1,
                                "path": snap_path,
                            },
                        )
                    if metrics is not None:
                        metrics.counter(
                            "bnb_checkpoint_written_total",
                            "Search snapshots written",
                        ).inc()
                    if lap is not None:
                        lap("checkpoint")

                if dispatcher is not None and vertex.level >= dispatch_depth:
                    # Delegate the whole subtree: the dispatcher returns
                    # the finished sub-search (the shard explored the
                    # root itself, so no explored increment here) and
                    # the merge below mirrors what the inline loop would
                    # have done with the shard's goals — absorb the
                    # counters, adopt a better incumbent, sweep once at
                    # the final threshold (consecutive sweeps at
                    # monotonically tightening thresholds collapse into
                    # one), honour early-stop and the MAXVERT cap.
                    sub = dispatcher.resolve(
                        vertex, incumbent_cost, max_vertices - stats.generated
                    )
                    stats.absorb(sub.stats, active_base=len(frontier))
                    if (
                        sub.proc_of is not None
                        and sub.best_cost < incumbent_cost
                    ):
                        incumbent_cost = sub.best_cost
                        found_cost = sub.best_cost
                        best_proc = sub.proc_of
                        best_start = sub.start
                        incumbent_source = "search"
                        if trace is not None:
                            trace.on_incumbent(stats.generated, incumbent_cost)
                        threshold = pruning_threshold(
                            incumbent_cost, params.inaccuracy
                        )
                        if elim.prunes_active_set():
                            stats.pruned_active += frontier.prune_above(
                                threshold
                            )
                        if channel is not None:
                            channel.publish(incumbent_cost)
                        dispatcher.notify_incumbent(incumbent_cost)
                        if (
                            early_stop is not None
                            and incumbent_cost <= early_stop
                        ):
                            target_reached = True
                            break
                    if sub.status is SolveStatus.TARGET_REACHED:
                        target_reached = True
                        break
                    if stats.generated >= max_vertices:
                        if rb.fail_on_exhaustion:
                            _limit_exceeded(
                                "MAXVERT", f"{stats.generated} generated"
                            )
                        stats.truncated = True
                        break
                    if lap is not None:
                        lap("select")
                    continue

                stats.explored += 1
                if lap is not None:
                    lap("select")

                if telem:
                    active_size = len(frontier)
                    if trace is not None:
                        trace.on_explore(
                            stats.explored,
                            stats.generated,
                            vertex.level,
                            vertex.lower_bound,
                            active_size,
                        )
                    if hot_sink is not None and hot_sink.accepts("explore"):
                        hot_sink.emit(
                            "explore",
                            {
                                "step": stats.explored,
                                "generated": stats.generated,
                                "level": vertex.level,
                                "lb": vertex.lower_bound,
                                "active": active_size,
                            },
                        )
                    if metrics is not None:
                        m_active.set(active_size)
                        h_active.observe(active_size)
                        if not math.isinf(incumbent_cost):
                            h_gap.observe(
                                incumbent_cost - vertex.lower_bound
                            )
                    if lap is not None:
                        lap("telemetry")

                # Live monitor and progress heartbeat ride one masked
                # check (not ``telem``: a monitor alone must not put the
                # per-vertex telemetry block on the hot path).
                if (
                    (live is not None or progress is not None)
                    and stats.explored & _PROGRESS_CHECK_MASK == 0
                ):
                    if live is not None:
                        live.on_sample(
                            stats=stats,
                            incumbent=incumbent_cost,
                            frontier=frontier,
                            vertex_lb=vertex.lower_bound,
                            stop_on_bound=stop_on_bound,
                            dominance=dominance,
                        )
                    if progress is not None:
                        # Under best-first selection the in-hand bound
                        # is the minimum open bound, so the gap in the
                        # heartbeat is exact; otherwise reuse the live
                        # monitor's last sampled gap when one exists.
                        if stop_on_bound and not math.isinf(incumbent_cost):
                            hb_gap = max(
                                0.0, incumbent_cost - vertex.lower_bound
                            )
                        elif live is not None:
                            hb_gap = live.last_gap
                        else:
                            hb_gap = None
                        progress.maybe_emit(
                            explored=stats.explored,
                            generated=stats.generated,
                            active=len(frontier),
                            incumbent=incumbent_cost,
                            max_vertices=rb.max_vertices,
                            time_limit=rb.time_limit,
                            gap=hb_gap,
                        )
                    if lap is not None:
                        lap("telemetry")

                if stats.explored & _TIME_CHECK_MASK == 0:
                    if (
                        not untimed
                        and stats.time_since_start() >= rb.time_limit
                    ):
                        stats.time_limit_hit = True
                        pending_vertex = vertex
                        if sink is not None and sink.accepts("resource"):
                            sink.emit(
                                "resource",
                                {"kind": "TIMELIMIT",
                                 "detail": f"{rb.time_limit}s"},
                            )
                        if rb.fail_on_exhaustion:
                            _limit_exceeded(
                                "TIMELIMIT", f"{rb.time_limit}s"
                            )
                        if lap is not None:
                            lap("select")
                        break
                    if (
                        not unmemed
                        and current_rss_bytes() >= rb.max_memory_bytes
                    ):
                        stats.memory_limit_hit = True
                        pending_vertex = vertex
                        if sink is not None and sink.accepts("resource"):
                            sink.emit(
                                "resource",
                                {"kind": "MEMLIMIT",
                                 "detail":
                                     f"rss >= {rb.max_memory_bytes:g}B"},
                            )
                        if rb.fail_on_exhaustion:
                            _limit_exceeded(
                                "MEMLIMIT",
                                f"rss >= {rb.max_memory_bytes:g}B",
                            )
                        if lap is not None:
                            lap("select")
                        break

                if (
                    channel is not None
                    and stats.explored & _BOUND_POLL_MASK == 0
                ):
                    ext = channel.poll()
                    if ext < incumbent_cost:
                        # A concurrent search found something better:
                        # adopt its cost for pruning only — the schedule
                        # stays with whoever published it, and our own
                        # goals must now beat the shared bound.
                        incumbent_cost = ext
                        threshold = pruning_threshold(
                            incumbent_cost, params.inaccuracy
                        )
                        if elim.prunes_active_set():
                            stats.pruned_active += frontier.prune_above(
                                threshold
                            )

                # Step 6-7: branch and bound the children.
                precheck_pruned = 0
                if expander is not None:
                    # Fused hot path: branching, state construction and
                    # bounding in one pass (see repro.core.expand).  The
                    # admission pre-check discards only children the
                    # reference loop would prune, after consuming their
                    # sequence numbers, so all counters stay identical;
                    # its discards are folded into pruned_children below.
                    (
                        seq, children, n_gen, n_goals, precheck_pruned,
                        n_infeasible, n_dominated, best_goal_cost,
                        best_goal_state,
                    ) = expander.expand(vertex, threshold, seq)
                    stats.generated += n_gen
                    stats.goals_evaluated += n_goals
                    stats.pruned_infeasible += n_infeasible
                    stats.pruned_dominated += n_dominated
                    # Close the expand span before any event dispatch so
                    # sink time is attributed to telemetry, not expand.
                    if lap is not None:
                        lap("expand")
                    if hot_sink is not None:
                        # Event parity is coarse on the fused path:
                        # per-child goal/prune events are aggregated.
                        if n_goals and hot_sink.accepts("goal"):
                            hot_sink.emit(
                                "goal",
                                {"generated": stats.generated,
                                 "count": n_goals,
                                 "cost": _json_num(best_goal_cost)},
                            )
                        if n_infeasible and hot_sink.accepts("prune"):
                            hot_sink.emit(
                                "prune",
                                {"cause": "infeasible",
                                 "count": n_infeasible,
                                 "level": vertex.level + 1},
                            )
                        if n_dominated and hot_sink.accepts("prune"):
                            hot_sink.emit(
                                "prune",
                                {"cause": "dominated",
                                 "count": n_dominated,
                                 "level": vertex.level + 1},
                            )
                        if lap is not None:
                            lap("telemetry")
                else:
                    placements = prepared.placements(
                        vertex.state, break_symmetry
                    )
                    if lap is not None:
                        lap("branch")
                    children = []
                    best_goal_cost = math.inf
                    best_goal_state = None
                    for task, proc in placements:
                        child_state = vertex.state.child(task, proc)
                        stats.generated += 1
                        if lap is not None:
                            lap("branch")
                        child_lb = bound.evaluate(child_state)
                        # States may carry their own floor (the
                        # allocation-load bound of AO states; -inf class
                        # default everywhere else).
                        floor = child_state.lb_floor
                        if floor > child_lb:
                            child_lb = floor
                        if lap is not None:
                            lap("bound")
                        if child_state.is_goal:
                            # Goal vertices never enter the active set:
                            # track the cheapest one in DB (Figure 2,
                            # steps 1-5).
                            stats.goals_evaluated += 1
                            if child_lb < best_goal_cost:
                                best_goal_cost = child_lb
                                best_goal_state = child_state
                            if (
                                hot_sink is not None
                                and hot_sink.accepts("goal")
                            ):
                                hot_sink.emit(
                                    "goal",
                                    {"generated": stats.generated,
                                     "cost": _json_num(child_lb)},
                                )
                            if lap is not None:
                                lap("goal-eval")
                            continue
                        if not charf.admits(child_state, child_lb):
                            stats.pruned_infeasible += 1
                            if (
                                hot_sink is not None
                                and hot_sink.accepts("prune")
                            ):
                                hot_sink.emit(
                                    "prune",
                                    {"cause": "infeasible",
                                     "lb": _json_num(child_lb),
                                     "level": vertex.level + 1},
                                )
                            if lap is not None:
                                lap("filter")
                            continue
                        if lap is not None:
                            lap("filter")
                        if dominance.is_dominated(child_state):
                            stats.pruned_dominated += 1
                            if (
                                hot_sink is not None
                                and hot_sink.accepts("prune")
                            ):
                                hot_sink.emit(
                                    "prune",
                                    {"cause": "dominated",
                                     "lb": _json_num(child_lb),
                                     "level": vertex.level + 1},
                                )
                            if lap is not None:
                                lap("dominance")
                            continue
                        if lap is not None:
                            lap("dominance")
                        children.append(Vertex(child_state, child_lb, seq))
                        seq += 1

                # Figure 2 steps 1-5: incumbent update from the cheapest
                # goal.
                threshold_tightened = False
                if (
                    best_goal_state is not None
                    and best_goal_cost < incumbent_cost
                ):
                    threshold_tightened = True
                    incumbent_cost = best_goal_cost
                    found_cost = best_goal_cost
                    best_proc = best_goal_state.proc_of
                    best_start = best_goal_state.start
                    incumbent_source = "search"
                    stats.incumbent_updates += 1
                    if channel is not None:
                        channel.publish(incumbent_cost)
                    if dispatcher is not None:
                        dispatcher.notify_incumbent(incumbent_cost)
                    if trace is not None:
                        trace.on_incumbent(stats.generated, incumbent_cost)
                    if sink is not None and sink.accepts("incumbent"):
                        sink.emit(
                            "incumbent",
                            {
                                "generated": stats.generated,
                                "explored": stats.explored,
                                "cost": _json_num(incumbent_cost),
                                "elapsed": round(stats.time_since_start(), 6),
                            },
                        )
                    threshold = pruning_threshold(
                        incumbent_cost, params.inaccuracy
                    )
                    # Figure 2 step 6, AS half: sweep the active set.
                    if elim.prunes_active_set():
                        swept = frontier.prune_above(threshold)
                        stats.pruned_active += swept
                        if (
                            hot_sink is not None
                            and swept
                            and hot_sink.accepts("prune")
                        ):
                            hot_sink.emit(
                                "prune",
                                {"cause": "active-sweep", "count": swept},
                            )
                    if early_stop is not None and incumbent_cost <= early_stop:
                        target_reached = True
                        if lap is not None:
                            lap("goal-eval")
                        break
                if lap is not None:
                    lap("goal-eval")

                # Figure 2 step 6, DB half: eliminate children.  The
                # fused path's pre-checked children are exactly the ones
                # this stage would have pruned (their bounds met the
                # threshold before it could only have tightened), so
                # they count here.
                if precheck_pruned:
                    stats.pruned_children += precheck_pruned
                    if hot_sink is not None and hot_sink.accepts("prune"):
                        hot_sink.emit(
                            "prune",
                            {"cause": "bound", "count": precheck_pruned,
                             "level": vertex.level + 1},
                        )
                if fused_precheck and not threshold_tightened:
                    # Pre-checked children are already strictly below
                    # this very threshold; re-testing each one cannot
                    # prune anything unless a goal just tightened it.
                    kept = children
                else:
                    kept = []
                    for child in children:
                        if elim.should_prune(child.lower_bound, threshold):
                            stats.pruned_children += 1
                            if (
                                hot_sink is not None
                                and hot_sink.accepts("prune")
                            ):
                                hot_sink.emit(
                                    "prune",
                                    {"cause": "bound",
                                     "lb": _json_num(child.lower_bound),
                                     "level": vertex.level + 1},
                                )
                        else:
                            kept.append(child)

                # RB: MAXSZDB caps the child set (keep the best bounds).
                if len(kept) > max_children:
                    if rb.fail_on_exhaustion:
                        if sink is not None and sink.accepts("resource"):
                            sink.emit(
                                "resource",
                                {"kind": "MAXSZDB",
                                 "detail": f"{len(kept)} children"},
                            )
                        _limit_exceeded(
                            "MAXSZDB", f"{len(kept)} children"
                        )
                    kept.sort(key=_BY_BOUND)
                    dropped_db = len(kept) - int(rb.max_children)
                    stats.dropped_resource += dropped_db
                    stats.truncated = True
                    del kept[int(rb.max_children):]
                    if sink is not None and sink.accepts("resource"):
                        sink.emit(
                            "resource",
                            {"kind": "MAXSZDB", "dropped": dropped_db},
                        )

                # Step 9: move the survivors into AS.
                if child_order == "best-last":
                    # Stable descending sort: equal bounds keep
                    # insertion order, matching the negated-key sort.
                    kept.sort(key=_BY_BOUND, reverse=True)
                elif child_order == "best-first":
                    kept.sort(key=_BY_BOUND)
                for child in kept:
                    frontier.push(child)
                if dispatcher is not None:
                    budget_guess = max_vertices - stats.generated
                    for child in kept:
                        if child.level >= dispatch_depth:
                            dispatcher.offer(
                                child, incumbent_cost, budget_guess
                            )

                active = len(frontier)
                if active > stats.peak_active:
                    stats.peak_active = active

                # RB: MAXSZAS disposes of the worst active vertices.
                if active > max_active:
                    if rb.fail_on_exhaustion:
                        if sink is not None and sink.accepts("resource"):
                            sink.emit(
                                "resource",
                                {"kind": "MAXSZAS",
                                 "detail": f"{active} active"},
                            )
                        _limit_exceeded(
                            "MAXSZAS", f"{active} active"
                        )
                    dropped = frontier.drop_worst(active - int(rb.max_active))
                    stats.dropped_resource += dropped
                    stats.truncated = True
                    if sink is not None and sink.accepts("resource"):
                        sink.emit(
                            "resource",
                            {"kind": "MAXSZAS", "dropped": dropped},
                        )

                # RB extension: generated-vertex cap.
                if stats.generated >= max_vertices:
                    if sink is not None and sink.accepts("resource"):
                        sink.emit(
                            "resource",
                            {"kind": "MAXVERT",
                             "detail": f"{stats.generated} generated"},
                        )
                    if rb.fail_on_exhaustion:
                        _limit_exceeded(
                            "MAXVERT", f"{stats.generated} generated"
                        )
                    stats.truncated = True
                    if lap is not None:
                        lap("eliminate")
                    break
                if lap is not None:
                    lap("eliminate")
        finally:
            # Always populate stats.elapsed, even when a resource bound
            # raises mid-solve (stop_clock is idempotent, so the normal
            # path is unaffected).
            stats.stop_clock()

        status = self._status(
            params, stats, target_reached, best_proc is not None
        )

        # Anytime bookkeeping for early stops: the best open lower bound
        # (frontier plus the in-hand vertex) bounds how far the incumbent
        # can sit from the optimum — but only when nothing was dropped
        # (MAXSZAS/MAXSZDB discards take their subtrees' bounds with
        # them).
        open_lower_bound = None
        stopped_early = (
            stats.interrupted
            or stats.time_limit_hit
            or stats.memory_limit_hit
            or stats.truncated
        )
        if stopped_early and stats.dropped_resource == 0:
            open_lower_bound = frontier.min_bound()
            if driver_open_min is not None and (
                open_lower_bound is None
                or driver_open_min < open_lower_bound
            ):
                open_lower_bound = driver_open_min
            if pending_vertex is not None and (
                open_lower_bound is None
                or pending_vertex.lower_bound < open_lower_bound
            ):
                open_lower_bound = pending_vertex.lower_bound

        # Final snapshot: an early-stopped run always leaves a resumable
        # file behind, whatever the periodic cadence last did.
        checkpoint_path = None
        if checkpoint is not None:
            if stopped_early:
                checkpoint_path = checkpoint.write(_snapshot())
                if sink is not None and sink.accepts("checkpoint"):
                    sink.emit(
                        "checkpoint",
                        {
                            "version": checkpoint.version - 1,
                            "explored": stats.explored,
                            "generated": stats.generated,
                            "active": len(frontier)
                            + (1 if pending_vertex is not None else 0),
                            "path": checkpoint_path,
                            "final": True,
                        },
                    )
                if metrics is not None:
                    metrics.counter(
                        "bnb_checkpoint_written_total",
                        "Search snapshots written",
                    ).inc()
            elif checkpoint.writes:
                checkpoint_path = checkpoint.path

        if lap is not None:
            lap("finalize")

        # Fold the dominance checker's post-solve telemetry into the
        # run's stats: transposition hits are split out of the dominated
        # count into `pruned_duplicate` so reports break pruning down by
        # rule (elimination vs dominance vs transposition).
        dom_tel = dominance.telemetry()
        if dom_tel:
            dup = dom_tel.get("duplicate_pruned", 0)
            if dup:
                stats.pruned_duplicate = dup
                stats.pruned_dominated -= dup

        if metrics is not None:
            _final_metrics(metrics, stats, incumbent_cost)
            if dom_tel:
                _tt_metrics(metrics, dom_tel)
        if sink is not None and dom_tel and sink.accepts("tt"):
            sink.emit("tt", {k: int(v) for k, v in dom_tel.items()})
        if sink is not None and sink.accepts("summary"):
            sink.emit(
                "summary",
                {
                    "status": status.value,
                    "best_cost": (
                        _json_num(found_cost)
                        if best_proc is not None
                        else None
                    ),
                    "initial_upper_bound": _json_num(initial_upper_bound),
                    "incumbent_source": incumbent_source,
                    "stats": stats.as_dict(),
                    "profile": (
                        dict(profiler.totals) if profiler is not None else None
                    ),
                },
            )
        if progress is not None:
            progress.finish(f"{status.value}; {stats.summary()}")
        if live is not None:
            # Terminal snapshot: short solves may never hit the sampling
            # interval, but /status must still show how the run ended.
            if best_proc is not None and open_lower_bound is not None:
                final_gap = max(0.0, found_cost - open_lower_bound)
            elif status is SolveStatus.OPTIMAL:
                final_gap = 0.0
            else:
                final_gap = None
            live.last_gap = final_gap
            live.bus.update(
                gap=final_gap,
                phase="done",
                result_status=status.value,
                elapsed=round(stats.elapsed, 3),
                explored=stats.explored,
                generated=stats.generated,
                active=len(frontier),
                incumbent=(
                    _json_num(found_cost) if best_proc is not None else None
                ),
                open_lower_bound=open_lower_bound,
                vps=round(stats.vertices_per_second or 0.0, 1),
            )
        if lap is not None:
            lap("telemetry")

        return BnBResult(
            problem=problem,
            params=params,
            status=status,
            best_cost=found_cost if best_proc is not None else math.inf,
            proc_of=best_proc,
            start=best_start,
            incumbent_source=incumbent_source,
            initial_upper_bound=initial_upper_bound,
            stats=stats,
            profile=profiler.freeze() if profiler is not None else None,
            open_lower_bound=open_lower_bound,
            checkpoint_path=checkpoint_path,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _status(
        params: BnBParameters,
        stats: SearchStats,
        target_reached: bool,
        found: bool,
    ) -> SolveStatus:
        if not found:
            return SolveStatus.FAILED
        if stats.interrupted:
            return SolveStatus.INTERRUPTED
        if stats.time_limit_hit:
            return SolveStatus.TIMEOUT
        if stats.memory_limit_hit:
            return SolveStatus.MEMORY
        if stats.truncated:
            return SolveStatus.TRUNCATED
        if target_reached:
            return SolveStatus.TARGET_REACHED
        if not params.branching.guarantees_optimal:
            return SolveStatus.APPROXIMATE
        if params.inaccuracy > 0:
            return SolveStatus.NEAR_OPTIMAL
        return SolveStatus.OPTIMAL


def solve(
    graph: TaskGraph,
    platform: Platform,
    params: BnBParameters | None = None,
) -> BnBResult:
    """One-shot convenience wrapper: compile and solve."""
    return BranchAndBound(params).solve_graph(graph, platform)
