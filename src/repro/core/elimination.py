"""Vertex elimination rules ``E`` (Section 3.6) and the BR threshold.

``E_U/DBAS`` (Figure 2) runs after bounding the freshly generated child
set ``DB``:

1. the cheapest goal vertex in ``DB`` (if any) replaces the best vertex
   when it improves on it, and goal vertices never enter the active set;
2. every vertex in ``DB`` *and* in the active set ``AS`` whose bound is
   at or above the current upper-bound cost is pruned.

Near-optimality with performance guarantees (inaccuracy limit ``BR``)
tightens the pruning threshold: a vertex is pruned when

    L(v) >= L(v_u) - BR * |L(v_u)|

so everything whose best completion could improve on the incumbent by
less than a BR fraction is discarded; at termination the incumbent's
cost deviates from the optimum by at most that fraction (for ``BR = 0``
this is exactly Figure 2, and the incumbent is optimal).  The absolute
value handles the signedness of lateness (the optimum is frequently
negative).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError

__all__ = [
    "pruning_threshold",
    "EliminationRule",
    "UDBASElimination",
    "NoElimination",
    "ELIMINATION_RULES",
]


def pruning_threshold(incumbent_cost: float, br: float) -> float:
    """Bound value at or above which a vertex cannot survive elimination."""
    if br < 0:
        raise ConfigurationError(f"BR must be >= 0, got {br}")
    if br == 0.0 or incumbent_cost == float("inf"):
        return incumbent_cost
    return incumbent_cost - br * abs(incumbent_cost)


class EliminationRule(ABC):
    """Strategy interface for the vertex elimination rule ``E``."""

    name: str = "?"

    #: Whether ``should_prune`` is monotone in the bound at a fixed
    #: threshold (pruning ``x`` implies pruning every ``y >= x``).  The
    #: fused expansion path's admission pre-check discards a child when
    #: a cheap *under*-estimate of its bound would already be pruned —
    #: sound only under this monotonicity.  Both shipped rules qualify;
    #: custom rules must opt in explicitly.
    monotone_in_bound: bool = False

    @abstractmethod
    def should_prune(self, lower_bound: float, threshold: float) -> bool:
        """Whether a vertex with this bound is eliminated at this threshold."""

    @abstractmethod
    def prunes_active_set(self) -> bool:
        """Whether the rule also sweeps ``AS`` when the incumbent improves."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class UDBASElimination(EliminationRule):
    """Upper-Bound-Cost-to-DB-and-AS: prune ``L(v) >= threshold`` everywhere."""

    name = "U/DBAS"
    monotone_in_bound = True

    def should_prune(self, lower_bound: float, threshold: float) -> bool:
        return lower_bound >= threshold

    def prunes_active_set(self) -> bool:
        return True


class NoElimination(EliminationRule):
    """Keep everything (exhaustive enumeration; ablation baseline).

    Goal vertices still update the incumbent — only pruning is disabled —
    so the search degenerates to implicit exhaustive enumeration of the
    branching rule's tree.
    """

    name = "none"
    # Constant-False is trivially monotone: the pre-check then never
    # fires, and the fused path degenerates to incremental bounding only.
    monotone_in_bound = True

    def should_prune(self, lower_bound: float, threshold: float) -> bool:
        return False

    def prunes_active_set(self) -> bool:
        return False


ELIMINATION_RULES: dict[str, type[EliminationRule]] = {
    UDBASElimination.name: UDBASElimination,
    NoElimination.name: NoElimination,
}
