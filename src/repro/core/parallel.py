"""Parallel branch-and-bound across worker processes.

The Kohler–Steiglitz parametrization decomposes cleanly: subtrees of
the search tree are independent given (a) the incumbent cost at the
moment their root would have been selected and (b) the remaining
resource budget.  :class:`ParallelBnB` exploits that in two modes built
on the same engine hooks (:class:`~repro.core.engine.SubtreeSpec` /
:class:`~repro.core.engine.SubtreeDispatcher`):

**Deterministic mode** (``deterministic=True``, the default) replays
the *exact* sequential search.  The coordinator runs the genuine
sequential loop; every popped vertex at ``split_depth`` or deeper is
resolved as a complete sub-search executed in a worker process.
Workers start *speculatively* the moment a shard's root is pushed,
guessing the incumbent it will see when popped; at resolution the guess
is checked against the true entering incumbent and the remaining
MAXVERT budget, and only mismatches re-run.  Accepted shards are
therefore bit-identical to what the sequential engine would have done,
so under LIFO selection (depth-first — shards are explored contiguously
in the sequential order too) the optimal cost, the returned schedule
*and every shard-summed counter* match the sequential run exactly.
Under best-first selection (LLB/LLB-D) the sequential loop interleaves
vertices of different shards on the global ``(bound, seq)`` order,
which no shard-local search can replicate; deterministic mode still
returns the same optimal cost, a run-to-run reproducible schedule, and
reproducible counters, but the counters legitimately differ from the
sequential interleaving (see ``docs/PARALLEL.md`` for the full
contract).

**Throughput mode** (``deterministic=False``) splits the depth-d
frontier round-robin across long-lived worker processes and lets them
race: the incumbent lives in a ``multiprocessing.Value`` that workers
poll every 64 explored vertices and publish improvements to (a
compare-and-set-min under the value's lock), so U/DBAS pruning stays
effective across shards.  Only the optimal *cost* is guaranteed (any
complete-search mode finds it: the shard containing an optimal goal
either reaches it or prunes its path only because an equally good cost
was already published); which equal-cost schedule wins depends on
cross-process timing.

Statistics merge by summation (:meth:`SearchStats.absorb`), worker
event streams can be folded into the coordinator's sink with per-worker
tags (:class:`~repro.obs.TaggedSink`), and the compiled problem ships
by pickling — it serializes as its source (graph, platform) pair and
recompiles on the other side.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..model.compile import CompiledProblem
from ..obs import MemorySink, Observability, TaggedSink
from .elimination import pruning_threshold
from .engine import (
    BnBResult,
    BranchAndBound,
    SolveStatus,
    SubtreeDispatcher,
    SubtreeSpec,
)
from .expand import PendingChild
from .params import BnBParameters
from .state import SearchState
from .stats import SearchStats
from .transposition import (
    PayloadCodec,
    SharedTranspositionTable,
    find_transposition,
)
from .vertex import Vertex

__all__ = [
    "ParallelBnB",
    "ParallelReport",
    "SharedIncumbent",
    "default_worker_count",
    "solve_parallel",
]


def default_worker_count() -> int:
    """Workers to use when the caller does not say: one per usable CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Shared incumbent
# ---------------------------------------------------------------------------


class SharedIncumbent:
    """Cross-process minimum over published incumbent costs.

    Wraps a ``multiprocessing.Value('d')``; ``publish`` is a
    compare-and-set-min under the value's lock, ``poll`` a locked read.
    Implements the engine's ``bound_channel`` protocol, so a worker's
    search publishes every local improvement and adopts any smaller
    cost it polls — pruning power propagates between shards at the
    engine's 64-explored-vertex polling cadence.
    """

    def __init__(self, value) -> None:
        self._value = value

    @classmethod
    def create(
        cls, initial: float = math.inf, ctx=None
    ) -> "SharedIncumbent":
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        return cls(ctx.Value("d", initial))

    @property
    def raw(self):
        """The underlying synchronized value (for process inheritance)."""
        return self._value

    def poll(self) -> float:
        v = self._value
        with v.get_lock():
            return v.value

    def publish(self, cost: float) -> bool:
        v = self._value
        with v.get_lock():
            if cost < v.value:
                v.value = cost
                return True
        return False


# ---------------------------------------------------------------------------
# Worker-process entry points (module-level: must be picklable by name)
# ---------------------------------------------------------------------------

_WORKER_CHANNEL: SharedIncumbent | None = None
_WORKER_TT: SharedTranspositionTable | None = None


def _init_worker(shared=None, tt_handle=None) -> None:
    """Pool initializer: adopt the inherited shared-incumbent value and
    attach the shared transposition segment (throughput mode only)."""
    global _WORKER_CHANNEL, _WORKER_TT
    _WORKER_CHANNEL = SharedIncumbent(shared) if shared is not None else None
    _WORKER_TT = (
        SharedTranspositionTable.from_handle(tt_handle)
        if tt_handle is not None
        else None
    )


def _run_shard(
    problem: CompiledProblem,
    params: BnBParameters,
    state: SearchState,
    lower_bound: float,
    incumbent_cost: float,
    budget: float,
    fused: bool | None,
) -> BnBResult:
    """Deterministic-mode worker: one complete sub-search, no sharing.

    The shard must reproduce exactly what the sequential engine would
    have done from this vertex, so it runs against the frozen entering
    incumbent — cross-shard bound sharing would make its counters
    depend on scheduling timing.
    """
    engine = BranchAndBound(params, fused=fused)
    return engine.solve(
        problem,
        subtree=SubtreeSpec(state, lower_bound, incumbent_cost, budget),
    )


@dataclass
class _BlockOutcome:
    """What one throughput-mode worker sends back for its shard block."""

    stats: SearchStats
    best_cost: float
    proc_of: tuple | None
    start: tuple | None
    target_reached: bool
    shards_run: int
    shards_stale: int
    #: ``(shard_index, [(kind, payload), ...])`` per executed shard when
    #: event collection was requested, else empty.
    events: list = field(default_factory=list)
    #: This worker's transposition-table telemetry (process-local view
    #: of the shared store), when the transposition layer was active.
    tt: dict | None = None


def _run_block(
    problem: CompiledProblem,
    params: BnBParameters,
    shards: list,
    budget: float,
    fused: bool | None,
    collect_events: bool,
) -> _BlockOutcome:
    """Throughput-mode worker: run a block of shards sequentially.

    Before each shard the current global incumbent is polled; shards
    whose bound already meets the threshold are dropped exactly as the
    sequential sweep would have dropped them (counted as
    ``pruned_active``).  Each sub-search polls and publishes through the
    shared channel while it runs.
    """
    channel = _WORKER_CHANNEL
    # Bind the dominance rule's transposition member (the rule arrived
    # pickled without runtime handles) to this process's attachment of
    # the shared segment, so every shard in the block prunes against —
    # and feeds — the same global store.
    tt_rule = find_transposition(params.dominance)
    if tt_rule is not None and _WORKER_TT is not None:
        tt_rule.bind_shared(_WORKER_TT)
    elim = params.elimination
    stats = SearchStats()
    best_cost = math.inf
    best_proc = None
    best_start = None
    target = False
    run = 0
    stale = 0
    events: list = []
    remaining = budget
    for shard_index, state, lower_bound in shards:
        incumbent = channel.poll() if channel is not None else math.inf
        if elim.should_prune(
            lower_bound, pruning_threshold(incumbent, params.inaccuracy)
        ):
            stats.pruned_active += 1
            stale += 1
            continue
        sink = MemorySink() if collect_events else None
        engine = BranchAndBound(
            params,
            obs=Observability(sink=sink) if sink is not None else None,
            fused=fused,
        )
        result = engine.solve(
            problem,
            subtree=SubtreeSpec(state, lower_bound, incumbent, remaining),
            bound_channel=channel,
        )
        run += 1
        stats.absorb(result.stats)
        remaining -= result.stats.generated
        if result.proc_of is not None and result.best_cost < best_cost:
            best_cost = result.best_cost
            best_proc = result.proc_of
            best_start = result.start
        if sink is not None:
            events.append((shard_index, sink.events))
        if result.status is SolveStatus.TARGET_REACHED:
            target = True
            break
        if remaining <= 0:
            stats.truncated = True
            break
    return _BlockOutcome(
        stats=stats,
        best_cost=best_cost,
        proc_of=best_proc,
        start=best_start,
        target_reached=target,
        shards_run=run,
        shards_stale=stale,
        events=events,
        tt=tt_rule.telemetry_total() if tt_rule is not None else None,
    )


# ---------------------------------------------------------------------------
# Coordinator-side dispatchers
# ---------------------------------------------------------------------------


def _shard_state(vertex: Vertex) -> SearchState:
    """Materialize a frontier vertex's state for shipping."""
    state = vertex.state
    if type(state) is PendingChild:
        state = state.materialize()
        vertex.state = state
    return state


@dataclass
class _Speculation:
    future: Future
    incumbent_cost: float
    budget: float
    state: SearchState
    lower_bound: float


class _ReplayDispatcher(SubtreeDispatcher):
    """Deterministic replay: resolve each shard with its exact entering
    parameters, reusing speculative runs whose guesses turned out right.

    A speculative run is acceptable iff (a) it was started with the
    incumbent the shard actually entered with, and (b) its generated
    count stayed strictly below the true remaining MAXVERT budget — a
    capped run only diverges from an uncapped one once the cap is
    reached, so a speculative search that finished under the entering
    budget is bit-identical to the budgeted search the sequential
    engine would have run.  Anything else re-runs with the exact
    parameters; correctness never depends on speculation.
    """

    def __init__(
        self,
        executor: ProcessPoolExecutor,
        problem: CompiledProblem,
        params: BnBParameters,
        fused: bool | None,
        depth: int,
        sink=None,
    ) -> None:
        self.depth = depth
        self._executor = executor
        self._problem = problem
        self._params = params
        self._fused = fused
        self._sink = sink
        self._pending: dict[int, _Speculation] = {}
        self.shards = 0
        self.speculative_hits = 0
        self.reruns = 0

    def _submit(
        self,
        state: SearchState,
        lower_bound: float,
        incumbent_cost: float,
        budget: float,
    ) -> Future:
        return self._executor.submit(
            _run_shard,
            self._problem,
            self._params,
            state,
            lower_bound,
            incumbent_cost,
            budget,
            self._fused,
        )

    def offer(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> None:
        state = _shard_state(vertex)
        self._pending[id(vertex)] = _Speculation(
            self._submit(state, vertex.lower_bound, incumbent_cost, budget),
            incumbent_cost,
            budget,
            state,
            vertex.lower_bound,
        )

    def notify_incumbent(self, cost: float) -> None:
        # Every outstanding speculation with a staler guess is doomed to
        # mismatch at resolution; restart the ones that have not begun
        # running (cancel() succeeds only for queued futures).
        for key, spec in self._pending.items():
            if spec.incumbent_cost > cost and spec.future.cancel():
                self._pending[key] = _Speculation(
                    self._submit(
                        spec.state, spec.lower_bound, cost, spec.budget
                    ),
                    cost,
                    spec.budget,
                    spec.state,
                    spec.lower_bound,
                )

    def resolve(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> BnBResult:
        self.shards += 1
        spec = self._pending.pop(id(vertex), None)
        result = None
        speculative = False
        if spec is not None and spec.incumbent_cost == incumbent_cost:
            candidate = spec.future.result()
            # The budget at offer time can only exceed the entering
            # budget (generation is monotone), so an untripped run under
            # it that stayed strictly below the entering budget is
            # identical to the exactly-budgeted run.
            if candidate.stats.generated < budget:
                self.speculative_hits += 1
                result = candidate
                speculative = True
        if result is None:
            if spec is not None:
                spec.future.cancel()
                self.reruns += 1
            result = self._submit(
                _shard_state(vertex), vertex.lower_bound, incumbent_cost,
                budget,
            ).result()
        sink = self._sink
        if sink is not None and sink.accepts("shard"):
            sink.emit(
                "shard",
                {
                    "shard": self.shards - 1,
                    "level": vertex.level,
                    "lb": vertex.lower_bound,
                    "speculative": speculative,
                    "generated": result.stats.generated,
                    "explored": result.stats.explored,
                },
            )
        return result


@dataclass(frozen=True)
class _Shard:
    index: int
    state: SearchState
    lower_bound: float
    incumbent_cost: float
    budget: float


class _FrontierCollector(SubtreeDispatcher):
    """Dispatcher that records the depth-d frontier instead of searching.

    Resolving every dispatched vertex with an empty result makes the
    coordinator's loop a pure shallow expansion: it terminates once all
    vertices below ``depth`` are expanded, leaving the would-be shard
    roots here in exact pop order with their entering incumbents and
    budgets.
    """

    def __init__(
        self, depth: int, problem: CompiledProblem, params: BnBParameters
    ) -> None:
        self.depth = depth
        self._problem = problem
        self._params = params
        self.shards: list[_Shard] = []

    def resolve(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> BnBResult:
        self.shards.append(
            _Shard(
                len(self.shards),
                _shard_state(vertex),
                vertex.lower_bound,
                incumbent_cost,
                budget,
            )
        )
        return BnBResult(
            problem=self._problem,
            params=self._params,
            status=SolveStatus.FAILED,
            best_cost=math.inf,
            proc_of=None,
            start=None,
            incumbent_source="initial-upper-bound",
            initial_upper_bound=incumbent_cost,
            stats=SearchStats(),
        )


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelReport:
    """How a parallel solve was executed (``ParallelBnB.last_report``)."""

    mode: str
    workers: int
    split_depth: int
    #: Subtree shards resolved (deterministic) or collected (throughput).
    shards: int
    #: Shards never searched because a polled incumbent pruned them.
    shards_stale: int = 0
    #: Deterministic mode: speculative runs accepted as-is.
    speculative_hits: int = 0
    #: Deterministic mode: speculations discarded and re-run exactly.
    reruns: int = 0
    #: Throughput mode: per-worker merged counters, in worker order.
    worker_stats: tuple = ()
    #: Merged transposition-table telemetry (coordinator + workers) when
    #: the transposition layer was active, else None.  Counter keys are
    #: summed across processes (each global event happens in exactly one
    #: process); ``tt_capacity`` is the shared geometry.
    tt_stats: dict | None = None


class ParallelBnB:
    """Multiprocessing driver around :class:`BranchAndBound`.

    ``workers=None`` uses one worker per usable CPU; ``split_depth`` is
    the tree level at which subtrees become shards.  See the module doc
    for the two modes; ``last_report`` describes the most recent solve.

    Deterministic mode rejects finite TIMELIMIT / MAXSZAS / MAXSZDB
    bounds (:class:`~repro.errors.ConfigurationError`): wall-clock cuts
    and worst-vertex disposal depend on timing and global generation
    order, which shards cannot reproduce.  The MAXVERT cap *is*
    supported exactly — the budget threads through shard resolution.
    """

    def __init__(
        self,
        params: BnBParameters | None = None,
        *,
        workers: int | None = None,
        split_depth: int = 2,
        deterministic: bool = True,
        fused: bool | None = None,
        obs: Observability | None = None,
        collect_worker_events: bool = False,
        mp_context=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if split_depth < 1:
            raise ConfigurationError(
                f"split_depth must be >= 1, got {split_depth}"
            )
        self.params = params or BnBParameters()
        self.workers = workers if workers is not None else default_worker_count()
        self.split_depth = split_depth
        self.deterministic = deterministic
        self.fused = fused
        self.obs = obs
        self.collect_worker_events = collect_worker_events
        self._mp_context = mp_context
        self.last_report: ParallelReport | None = None

    # ------------------------------------------------------------------

    def solve(self, problem: CompiledProblem) -> BnBResult:
        if self.deterministic:
            return self._solve_deterministic(problem)
        return self._solve_throughput(problem)

    def solve_graph(self, graph, platform) -> BnBResult:
        from ..model.compile import compile_problem

        return self.solve(compile_problem(graph, platform))

    # ------------------------------------------------------------------

    def _ctx(self):
        if self._mp_context is not None:
            return self._mp_context
        return multiprocessing.get_context()

    def _solve_deterministic(self, problem: CompiledProblem) -> BnBResult:
        rb = self.params.resources
        for name in ("time_limit", "max_active", "max_children"):
            if not math.isinf(getattr(rb, name)):
                raise ConfigurationError(
                    "deterministic parallel mode requires unbounded "
                    f"{name}: its effect depends on timing or global "
                    "generation order, which shards cannot reproduce "
                    "(use deterministic=False, or max_vertices, which "
                    "is replayed exactly)"
                )
        if find_transposition(self.params.dominance) is not None:
            raise ConfigurationError(
                "deterministic parallel mode does not support the "
                "transposition layer: the sequential engine feeds one "
                "table across the whole tree, which per-shard replay "
                "cannot reproduce bit-exactly (use deterministic=False "
                "for the shared-table throughput mode, or solve "
                "sequentially)"
            )
        sink = self.obs.sink if self.obs is not None else None
        executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._ctx()
        )
        try:
            dispatcher = _ReplayDispatcher(
                executor, problem, self.params, self.fused,
                self.split_depth, sink,
            )
            engine = BranchAndBound(self.params, obs=self.obs, fused=self.fused)
            result = engine.solve(problem, dispatcher=dispatcher)
        finally:
            # Stale speculations for swept shards must not keep workers
            # busy past the solve.
            executor.shutdown(wait=True, cancel_futures=True)
        self.last_report = ParallelReport(
            mode="deterministic",
            workers=self.workers,
            split_depth=self.split_depth,
            shards=dispatcher.shards,
            speculative_hits=dispatcher.speculative_hits,
            reruns=dispatcher.reruns,
        )
        return result

    def _solve_throughput(self, problem: CompiledProblem) -> BnBResult:
        t0 = time.perf_counter()
        params = self.params
        tt_rule = find_transposition(params.dominance)
        shared_tt = None
        tt_mark = 0
        if tt_rule is not None:
            # One lock-striped shared segment for the whole solve: the
            # coordinator's shallow pass seeds it, worker shards prune
            # against (and feed) it.  The coordinator owns its lifetime.
            shared_tt = SharedTranspositionTable.create(
                tt_rule.table_bytes,
                PayloadCodec.for_problem(problem),
                tt_rule.policy,
                ctx=self._ctx(),
            )
            tt_rule.bind_shared(shared_tt)
            tt_mark = tt_rule.spawn_mark()
        try:
            return self._throughput_run(
                problem, t0, tt_rule, shared_tt, tt_mark
            )
        finally:
            if shared_tt is not None:
                tt_rule.bind_shared(None)
                shared_tt.close()

    def _throughput_run(
        self, problem: CompiledProblem, t0, tt_rule, shared_tt, tt_mark
    ) -> BnBResult:
        params = self.params
        collector = _FrontierCollector(self.split_depth, problem, params)
        engine = BranchAndBound(params, obs=self.obs, fused=self.fused)
        shallow = engine.solve(problem, dispatcher=collector)
        shards = collector.shards
        if not shards or shallow.status is SolveStatus.TARGET_REACHED:
            # The shallow pass already completed the search (tiny tree,
            # everything pruned, or early stop before any dispatch).
            self.last_report = ParallelReport(
                mode="throughput",
                workers=self.workers,
                split_depth=self.split_depth,
                shards=len(shards),
                tt_stats=(
                    tt_rule.telemetry_total(tt_mark)
                    if tt_rule is not None
                    else None
                ),
            )
            return shallow

        incumbent0 = min(shallow.best_cost, shallow.initial_upper_bound)
        threshold0 = pruning_threshold(incumbent0, params.inaccuracy)
        elim = params.elimination
        live = [
            s
            for s in shards
            if not elim.should_prune(s.lower_bound, threshold0)
        ]
        merged = SearchStats()
        merged.absorb(shallow.stats)
        # Shards collected before a later shallow incumbent improvement
        # would have been swept by the sequential engine; count them so.
        merged.pruned_active += len(shards) - len(live)

        budget = params.resources.max_vertices - shallow.stats.generated
        best_cost = shallow.best_cost
        best_proc = shallow.proc_of
        best_start = shallow.start
        target = False
        worker_stats: list[SearchStats] = []
        outcomes: list[_BlockOutcome] = []
        if live and budget > 0:
            blocks: list[list] = [[] for _ in range(self.workers)]
            for i, s in enumerate(live):
                blocks[i % self.workers].append(
                    (s.index, s.state, s.lower_bound)
                )
            blocks = [b for b in blocks if b]
            ctx = self._ctx()
            shared = ctx.Value("d", incumbent0)
            executor = ProcessPoolExecutor(
                max_workers=len(blocks),
                mp_context=ctx,
                initializer=_init_worker,
                initargs=(
                    shared,
                    shared_tt.handle() if shared_tt is not None else None,
                ),
            )
            try:
                futures = [
                    executor.submit(
                        _run_block,
                        problem,
                        params,
                        block,
                        budget,
                        self.fused,
                        self.collect_worker_events,
                    )
                    for block in blocks
                ]
                outcomes = [f.result() for f in futures]
            finally:
                executor.shutdown(wait=True, cancel_futures=True)
            for outcome in outcomes:
                merged.absorb(outcome.stats)
                worker_stats.append(outcome.stats)
                target = target or outcome.target_reached
                if (
                    outcome.proc_of is not None
                    and outcome.best_cost < best_cost
                ):
                    best_cost = outcome.best_cost
                    best_proc = outcome.proc_of
                    best_start = outcome.start
        elif budget <= 0:
            merged.truncated = True

        sink = self.obs.sink if self.obs is not None else None
        if sink is not None and self.collect_worker_events:
            for worker_id, outcome in enumerate(outcomes):
                for shard_index, shard_events in outcome.events:
                    tagged = TaggedSink(
                        sink, worker=worker_id, shard=shard_index
                    )
                    for kind, payload in shard_events:
                        if tagged.accepts(kind):
                            tagged.emit(kind, payload)

        merged.elapsed = time.perf_counter() - t0
        found = best_proc is not None
        status = BranchAndBound._status(params, merged, target, found)
        incumbent_source = (
            "search"
            if found and best_cost < shallow.initial_upper_bound
            else shallow.incumbent_source
        )
        tt_stats = None
        if tt_rule is not None:
            tt_stats = tt_rule.telemetry_total(tt_mark)
            for outcome in outcomes:
                if not outcome.tt:
                    continue
                for k, v in outcome.tt.items():
                    if k == "tt_capacity":
                        tt_stats[k] = v
                    else:
                        # Process-local views sum to the global count:
                        # every hit/miss/insert/fill happens in exactly
                        # one process.
                        tt_stats[k] = tt_stats.get(k, 0) + v
        self.last_report = ParallelReport(
            mode="throughput",
            workers=self.workers,
            split_depth=self.split_depth,
            shards=len(shards),
            shards_stale=(len(shards) - len(live))
            + sum(o.shards_stale for o in outcomes),
            worker_stats=tuple(worker_stats),
            tt_stats=tt_stats,
        )
        return BnBResult(
            problem=problem,
            params=params,
            status=status,
            best_cost=best_cost if found else math.inf,
            proc_of=best_proc,
            start=best_start,
            incumbent_source=incumbent_source,
            initial_upper_bound=shallow.initial_upper_bound,
            stats=merged,
        )


def solve_parallel(
    problem: CompiledProblem,
    params: BnBParameters | None = None,
    *,
    workers: int | None = None,
    deterministic: bool = True,
    split_depth: int = 2,
    fused: bool | None = None,
) -> BnBResult:
    """One-shot convenience wrapper around :class:`ParallelBnB`."""
    return ParallelBnB(
        params,
        workers=workers,
        split_depth=split_depth,
        deterministic=deterministic,
        fused=fused,
    ).solve(problem)
