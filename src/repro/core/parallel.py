"""Parallel branch-and-bound across worker processes.

The Kohler–Steiglitz parametrization decomposes cleanly: subtrees of
the search tree are independent given (a) the incumbent cost at the
moment their root would have been selected and (b) the remaining
resource budget.  :class:`ParallelBnB` exploits that in two modes built
on the same engine hooks (:class:`~repro.core.engine.SubtreeSpec` /
:class:`~repro.core.engine.SubtreeDispatcher`):

**Deterministic mode** (``deterministic=True``, the default) replays
the *exact* sequential search.  The coordinator runs the genuine
sequential loop; every popped vertex at ``split_depth`` or deeper is
resolved as a complete sub-search executed in a worker process.
Workers start *speculatively* the moment a shard's root is pushed,
guessing the incumbent it will see when popped; at resolution the guess
is checked against the true entering incumbent and the remaining
MAXVERT budget, and only mismatches re-run.  Accepted shards are
therefore bit-identical to what the sequential engine would have done,
so under LIFO selection (depth-first — shards are explored contiguously
in the sequential order too) the optimal cost, the returned schedule
*and every shard-summed counter* match the sequential run exactly.
Under best-first selection (LLB/LLB-D) the sequential loop interleaves
vertices of different shards on the global ``(bound, seq)`` order,
which no shard-local search can replicate; deterministic mode still
returns the same optimal cost, a run-to-run reproducible schedule, and
reproducible counters, but the counters legitimately differ from the
sequential interleaving (see ``docs/PARALLEL.md`` for the full
contract).

**Throughput mode** (``deterministic=False``) hands the depth-d
frontier shard-by-shard to long-lived supervised worker processes and
lets them race: the incumbent lives in a ``multiprocessing.Value`` that
workers poll every 64 explored vertices and publish improvements to (a
compare-and-set-min under the value's lock), so U/DBAS pruning stays
effective across shards.  Only the optimal *cost* is guaranteed (any
complete-search mode finds it: the shard containing an optimal goal
either reaches it or prunes its path only because an equally good cost
was already published); which equal-cost schedule wins depends on
cross-process timing.

Statistics merge by summation (:meth:`SearchStats.absorb`), worker
event streams can be folded into the coordinator's sink with per-worker
tags (:class:`~repro.obs.TaggedSink`), and the compiled problem ships
by pickling — it serializes as its source (graph, platform) pair and
recompiles on the other side.

Fault tolerance
---------------
Worker processes die (OOM killers, preemption, plain bugs); the driver
survives them.  Throughput mode runs its own supervisor: each worker is
a dedicated process fed shards over a pipe, stamping a heartbeat slot
on every bound-channel poll.  A dead pipe, a dead process, or a stale
heartbeat triggers a worker restart; the in-flight shard is re-queued
with exponential backoff and a bounded attempt budget, after which it
is *quarantined* (the run completes, reports the loss, and is marked
TRUNCATED — never silently wrong).  Deterministic mode retries a
broken process pool the same bounded way, rebuilding the pool and
re-running the shard exactly; :class:`~repro.errors.WorkerCrashed` is
raised only when the budget is exhausted.  An injectable
:class:`FaultPlan` drives the fault-injection test suite (crash a
worker on a given shard/attempt, hang it, or kill it mid-search).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait

from ..errors import ConfigurationError, ResourceLimitExceeded, WorkerCrashed
from ..model.compile import CompiledProblem
from ..obs import MemorySink, Observability, TaggedSink
from .elimination import pruning_threshold
from .engine import (
    BnBResult,
    BranchAndBound,
    SolveStatus,
    SubtreeDispatcher,
    SubtreeSpec,
)
from .params import BnBParameters
from .shards import BackoffPolicy, FrontierCollector, RetryQueue, Shard, shard_state
from .state import SearchState
from .stats import SearchStats
from .transposition import (
    PayloadCodec,
    SharedTranspositionTable,
    find_transposition,
)
from .vertex import Vertex

__all__ = [
    "FaultPlan",
    "ParallelBnB",
    "ParallelReport",
    "SharedIncumbent",
    "ShardFault",
    "default_worker_count",
    "solve_parallel",
]


def default_worker_count() -> int:
    """Workers to use when the caller does not say: one per usable CPU."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Shared incumbent
# ---------------------------------------------------------------------------


class SharedIncumbent:
    """Cross-process minimum over published incumbent costs.

    Wraps a ``multiprocessing.Value('d')``; ``publish`` is a
    compare-and-set-min under the value's lock, ``poll`` a locked read.
    Implements the engine's ``bound_channel`` protocol, so a worker's
    search publishes every local improvement and adopts any smaller
    cost it polls — pruning power propagates between shards at the
    engine's 64-explored-vertex polling cadence.
    """

    def __init__(self, value) -> None:
        self._value = value

    @classmethod
    def create(
        cls, initial: float = math.inf, ctx=None
    ) -> "SharedIncumbent":
        ctx = ctx if ctx is not None else multiprocessing.get_context()
        return cls(ctx.Value("d", initial))

    @property
    def raw(self):
        """The underlying synchronized value (for process inheritance)."""
        return self._value

    def poll(self) -> float:
        v = self._value
        with v.get_lock():
            return v.value

    def publish(self, cost: float) -> bool:
        v = self._value
        with v.get_lock():
            if cost < v.value:
                v.value = cost
                return True
        return False


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

#: Exit code used by injected crashes, distinct from every real failure
#: the interpreter produces — a supervisor test can assert the death it
#: observed was the one it planted.
_FAULT_EXIT = 57


@dataclass(frozen=True)
class ShardFault:
    """One planted failure: fires when ``shard`` runs on ``attempt``.

    ``shard`` is the shard index (throughput mode) or the resolution
    ordinal (deterministic mode); ``-1`` matches any shard.  ``attempt``
    is 1-based, so the default plants the fault on the first try and
    lets the retry succeed.

    Kinds:

    * ``"crash"`` — the worker process exits hard (``os._exit``) before
      touching the shard, as if the OOM killer got it between tasks.
    * ``"crash-mid"`` — the worker dies *during* the sub-search, after
      ``after_polls`` bound-channel polls: state is torn mid-expansion,
      the strictest recovery case.
    * ``"hang"`` — the worker sleeps ``hang_seconds`` without stamping
      its heartbeat; only the watchdog can reclaim the shard.
    """

    kind: str
    shard: int = -1
    attempt: int = 1
    hang_seconds: float = 3600.0
    after_polls: int = 2

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "crash-mid", "hang"):
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r} "
                "(expected crash, crash-mid or hang)"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An injectable set of :class:`ShardFault` entries (tests only).

    The plan ships to workers by pickling; matching is pure, so a
    respawned worker consults the same plan and the *attempt* number is
    what distinguishes the retry from the original.
    """

    faults: tuple[ShardFault, ...] = ()

    def match(self, shard: int, attempt: int) -> ShardFault | None:
        for fault in self.faults:
            if fault.shard in (-1, shard) and fault.attempt == attempt:
                return fault
        return None


class _HeartbeatChannel:
    """Bound-channel wrapper stamping a liveness beat on every poll.

    The engine polls its bound channel every 64 explored vertices, so
    the beat doubles as a progress signal: a worker that stops stamping
    for ``heartbeat_timeout`` seconds is either hung or dead slow, and
    the supervisor reclaims its shard either way.
    """

    def __init__(self, inner, beats, slot: int) -> None:
        self._inner = inner
        self._beats = beats
        self._slot = slot

    def poll(self) -> float:
        self._beats[self._slot] = time.monotonic()
        return self._inner.poll()

    def publish(self, cost: float) -> bool:
        return self._inner.publish(cost)


class _StatsReportingChannel:
    """Bound-channel wrapper shipping periodic WorkerStats frames.

    Piggybacks on the engine's bound poll (every 64 explored vertices):
    when ``interval`` seconds have passed it sends ``("stats",
    shard_index, approx_explored, windowed_vps)`` up the supervision
    pipe.  Counts are approximate — one poll ≈ 64 explored vertices;
    the engine's exact counters are invisible mid-solve and the exact
    stats still arrive with the shard's ``done`` message.  Sends share
    the worker's single thread with result sends, so frames never
    interleave mid-message.
    """

    #: The engine polls its bound channel every 64 explored vertices.
    _VERTICES_PER_POLL = 64

    def __init__(self, inner, conn, shard_index: int, interval: float) -> None:
        self._inner = inner
        self._conn = conn
        self._shard = shard_index
        self._interval = interval
        self._polls = 0
        self._last_t = time.monotonic()
        self._last_polls = 0

    def poll(self) -> float:
        self._polls += 1
        now = time.monotonic()
        if now - self._last_t >= self._interval:
            window = now - self._last_t
            delta = self._polls - self._last_polls
            vps = delta * self._VERTICES_PER_POLL / window if window > 0 else 0.0
            self._last_t = now
            self._last_polls = self._polls
            try:
                self._conn.send(
                    (
                        "stats",
                        self._shard,
                        self._polls * self._VERTICES_PER_POLL,
                        vps,
                    )
                )
            except (BrokenPipeError, OSError):
                pass  # supervisor gone; the search still finishes
        return self._inner.poll()

    def publish(self, cost: float) -> bool:
        return self._inner.publish(cost)


class _CrashAfterPolls:
    """Fault-injection channel: kill the process mid-search."""

    def __init__(self, inner, polls: int) -> None:
        self._inner = inner
        self._left = max(1, polls)

    def poll(self) -> float:
        self._left -= 1
        if self._left <= 0:
            os._exit(_FAULT_EXIT)
        return self._inner.poll()

    def publish(self, cost: float) -> bool:
        return self._inner.publish(cost)


def _fire_fault(fault: ShardFault | None) -> ShardFault | None:
    """Apply a pre-search fault; return it if it wraps the search itself."""
    if fault is None:
        return None
    if fault.kind == "crash":
        os._exit(_FAULT_EXIT)
    if fault.kind == "hang":
        time.sleep(fault.hang_seconds)
        return None
    return fault  # crash-mid: caller wraps the bound channel


# ---------------------------------------------------------------------------
# Worker-process entry points (module-level: must be picklable by name)
# ---------------------------------------------------------------------------


class _NullChannel:
    """Inert bound channel: polls ∞, swallows publishes.

    Used only to give fault injection a mid-search hook in deterministic
    mode — adopting ∞ and discarding publishes leaves the sub-search
    bit-identical to running with no channel at all.
    """

    def poll(self) -> float:
        return math.inf

    def publish(self, cost: float) -> bool:
        return False


def _run_shard(
    problem: CompiledProblem,
    params: BnBParameters,
    state: SearchState,
    lower_bound: float,
    incumbent_cost: float,
    budget: float,
    fused: bool | None,
    ordinal: int = -1,
    attempt: int = 1,
    fault_plan: FaultPlan | None = None,
) -> BnBResult:
    """Deterministic-mode worker: one complete sub-search, no sharing.

    The shard must reproduce exactly what the sequential engine would
    have done from this vertex, so it runs against the frozen entering
    incumbent — cross-shard bound sharing would make its counters
    depend on scheduling timing.
    """
    fault = None
    if fault_plan is not None:
        fault = _fire_fault(fault_plan.match(ordinal, attempt))
    channel = None
    if fault is not None:  # crash-mid: die after N polls of an inert channel
        channel = _CrashAfterPolls(_NullChannel(), fault.after_polls)
    engine = BranchAndBound(params, fused=fused)
    return engine.solve(
        problem,
        subtree=SubtreeSpec(state, lower_bound, incumbent_cost, budget),
        bound_channel=channel,
    )


def _supervised_worker(
    conn,
    slot: int,
    beats,
    shared,
    problem: CompiledProblem,
    params: BnBParameters,
    fused: bool | None,
    collect_events: bool,
    tt_handle,
    fault_plan: FaultPlan | None,
    stats_interval: float | None = None,
) -> None:
    """Supervised throughput worker: one shard per pipe message.

    Protocol (all tuples, kind first):

    * recv ``("run", shard_index, state, lower_bound, attempt, budget)``
      → send ``("stale", shard_index)`` if a polled incumbent already
      prunes the shard, else ``("done", shard_index, stats, best_cost,
      proc_of, start, target_reached, events)``.
    * recv ``("stop",)`` → send ``("bye", tt_telemetry)`` and exit.

    With ``stats_interval`` set (the coordinator has a live monitor
    attached) the worker additionally ships ``("stats", shard_index,
    approx_explored, vps)`` frames mid-shard at that cadence — see
    :class:`_StatsReportingChannel`.

    The heartbeat slot is stamped on receipt and then on every
    bound-channel poll inside the sub-search; a worker that stops
    stamping is presumed hung and reclaimed by the supervisor.
    """
    channel = SharedIncumbent(shared)
    tt_rule = find_transposition(params.dominance)
    if tt_rule is not None and tt_handle is not None:
        tt_rule.bind_shared(SharedTranspositionTable.from_handle(tt_handle))
    elim = params.elimination
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            # Supervisor vanished; nothing sensible left to do.
            return
        if msg[0] == "stop":
            try:
                conn.send(
                    (
                        "bye",
                        tt_rule.telemetry_total()
                        if tt_rule is not None
                        else None,
                    )
                )
            except (BrokenPipeError, OSError):
                pass
            return
        _, shard_index, state, lower_bound, attempt, budget = msg
        beats[slot] = time.monotonic()
        fault = None
        if fault_plan is not None:
            fault = _fire_fault(fault_plan.match(shard_index, attempt))
        incumbent = channel.poll()
        if elim.should_prune(
            lower_bound, pruning_threshold(incumbent, params.inaccuracy)
        ):
            conn.send(("stale", shard_index))
            continue
        run_channel = _HeartbeatChannel(channel, beats, slot)
        if stats_interval is not None:
            run_channel = _StatsReportingChannel(
                run_channel, conn, shard_index, stats_interval
            )
        if fault is not None:  # crash-mid
            run_channel = _CrashAfterPolls(run_channel, fault.after_polls)
        sink = MemorySink() if collect_events else None
        engine = BranchAndBound(
            params,
            obs=Observability(sink=sink) if sink is not None else None,
            fused=fused,
        )
        try:
            result = engine.solve(
                problem,
                subtree=SubtreeSpec(state, lower_bound, incumbent, budget),
                bound_channel=run_channel,
            )
        except ResourceLimitExceeded as exc:
            # fail_on_exhaustion semantics must survive supervision: the
            # exception travels home over the pipe (its __reduce__ drops
            # the unpicklable partial result) and the supervisor
            # re-raises it, exactly like the unsupervised pool did.
            conn.send(("error", shard_index, exc))
            continue
        conn.send(
            (
                "done",
                shard_index,
                result.stats,
                result.best_cost if result.proc_of is not None else math.inf,
                result.proc_of,
                result.start,
                result.status is SolveStatus.TARGET_REACHED,
                sink.events if sink is not None else None,
            )
        )


# ---------------------------------------------------------------------------
# Coordinator-side dispatchers
# ---------------------------------------------------------------------------


# Frontier decomposition now lives in :mod:`repro.core.shards`, shared
# with the cluster coordinator; the old private names stay as aliases.
_shard_state = shard_state
_Shard = Shard
_FrontierCollector = FrontierCollector


@dataclass
class _Speculation:
    future: Future
    incumbent_cost: float
    budget: float
    state: SearchState
    lower_bound: float


class _ReplayDispatcher(SubtreeDispatcher):
    """Deterministic replay: resolve each shard with its exact entering
    parameters, reusing speculative runs whose guesses turned out right.

    A speculative run is acceptable iff (a) it was started with the
    incumbent the shard actually entered with, and (b) its generated
    count stayed strictly below the true remaining MAXVERT budget — a
    capped run only diverges from an uncapped one once the cap is
    reached, so a speculative search that finished under the entering
    budget is bit-identical to the budgeted search the sequential
    engine would have run.  Anything else re-runs with the exact
    parameters; correctness never depends on speculation.

    The dispatcher owns its executor via a factory: when a worker dies
    (``BrokenExecutor``) the pool is rebuilt, outstanding speculations
    are discarded (their futures died with the pool) and the shard in
    hand is re-run exactly, up to ``max_attempts`` times before
    :class:`~repro.errors.WorkerCrashed` gives up.  A re-run is
    bit-identical to the lost run — shards are pure functions of their
    entering parameters — so crash recovery never perturbs the replay.
    """

    def __init__(
        self,
        executor_factory,
        problem: CompiledProblem,
        params: BnBParameters,
        fused: bool | None,
        depth: int,
        sink=None,
        max_attempts: int = 3,
        metrics=None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.depth = depth
        self._make_executor = executor_factory
        self._executor = executor_factory()
        self._problem = problem
        self._params = params
        self._fused = fused
        self._sink = sink
        self._metrics = metrics
        self._max_attempts = max_attempts
        self._fault_plan = fault_plan
        self._pending: dict[int, _Speculation] = {}
        self.shards = 0
        self.speculative_hits = 0
        self.reruns = 0
        self.worker_restarts = 0
        self.shard_retries = 0

    def shutdown(self) -> None:
        # Stale speculations for swept shards must not keep workers
        # busy past the solve.
        self._executor.shutdown(wait=True, cancel_futures=True)

    def _rebuild(self, shard: int, attempt: int, error) -> None:
        """Replace the broken pool; drop speculations that died with it."""
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self._pending.clear()
        self._executor = self._make_executor()
        self.worker_restarts += 1
        if self._metrics is not None:
            self._metrics.counter("bnb_worker_restart_total").inc()
        sink = self._sink
        if sink is not None and sink.accepts("worker_restart"):
            sink.emit(
                "worker_restart",
                {
                    "mode": "deterministic",
                    "shard": shard,
                    "attempt": attempt,
                    "error": f"{type(error).__name__}: {error}",
                },
            )

    def _submit(
        self,
        state: SearchState,
        lower_bound: float,
        incumbent_cost: float,
        budget: float,
        ordinal: int = -1,
        attempt: int = 1,
    ) -> Future:
        return self._executor.submit(
            _run_shard,
            self._problem,
            self._params,
            state,
            lower_bound,
            incumbent_cost,
            budget,
            self._fused,
            ordinal,
            attempt,
            self._fault_plan,
        )

    def offer(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> None:
        state = _shard_state(vertex)
        try:
            future = self._submit(
                state, vertex.lower_bound, incumbent_cost, budget
            )
        except BrokenExecutor as exc:
            # A crashed speculation broke the pool between resolutions;
            # recover now and simply skip this speculation.
            self._rebuild(-1, 1, exc)
            return
        self._pending[id(vertex)] = _Speculation(
            future, incumbent_cost, budget, state, vertex.lower_bound
        )

    def notify_incumbent(self, cost: float) -> None:
        # Every outstanding speculation with a staler guess is doomed to
        # mismatch at resolution; restart the ones that have not begun
        # running (cancel() succeeds only for queued futures).
        for key, spec in list(self._pending.items()):
            if spec.incumbent_cost > cost and spec.future.cancel():
                try:
                    future = self._submit(
                        spec.state, spec.lower_bound, cost, spec.budget
                    )
                except BrokenExecutor as exc:
                    self._rebuild(-1, 1, exc)
                    return
                self._pending[key] = _Speculation(
                    future, cost, spec.budget, spec.state, spec.lower_bound
                )

    def resolve(
        self, vertex: Vertex, incumbent_cost: float, budget: float
    ) -> BnBResult:
        self.shards += 1
        ordinal = self.shards - 1
        spec = self._pending.pop(id(vertex), None)
        result = None
        speculative = False
        if spec is not None and spec.incumbent_cost == incumbent_cost:
            try:
                candidate = spec.future.result()
            except BrokenExecutor as exc:
                self._rebuild(ordinal, 1, exc)
                candidate = None
            # The budget at offer time can only exceed the entering
            # budget (generation is monotone), so an untripped run under
            # it that stayed strictly below the entering budget is
            # identical to the exactly-budgeted run.
            if candidate is not None and candidate.stats.generated < budget:
                self.speculative_hits += 1
                result = candidate
                speculative = True
        if result is None:
            if spec is not None:
                spec.future.cancel()
                self.reruns += 1
            attempt = 1
            while True:
                try:
                    result = self._submit(
                        _shard_state(vertex),
                        vertex.lower_bound,
                        incumbent_cost,
                        budget,
                        ordinal,
                        attempt,
                    ).result()
                    break
                except BrokenExecutor as exc:
                    # Note: only pool breakage is caught — a worker that
                    # *raises* (e.g. ResourceLimitExceeded) propagates.
                    self._rebuild(ordinal, attempt, exc)
                    if attempt >= self._max_attempts:
                        raise WorkerCrashed(
                            f"shard {ordinal} killed its worker on all "
                            f"{attempt} attempts (last: {exc})",
                            attempts=attempt,
                        ) from exc
                    attempt += 1
                    self.shard_retries += 1
                    if self._metrics is not None:
                        self._metrics.counter("bnb_shard_retry_total").inc()
                    sink = self._sink
                    if sink is not None and sink.accepts("shard_retry"):
                        sink.emit(
                            "shard_retry",
                            {
                                "mode": "deterministic",
                                "shard": ordinal,
                                "attempt": attempt,
                            },
                        )
        sink = self._sink
        if sink is not None and sink.accepts("shard"):
            sink.emit(
                "shard",
                {
                    "shard": self.shards - 1,
                    "level": vertex.level,
                    "lb": vertex.lower_bound,
                    "speculative": speculative,
                    "generated": result.stats.generated,
                    "explored": result.stats.explored,
                },
            )
        return result


# ---------------------------------------------------------------------------
# Throughput-mode supervision
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    """One supervised worker process and its command pipe."""

    proc: object
    conn: object
    slot: int
    #: ``(shard, attempt)`` in flight, or None when idle.
    task: tuple | None = None


@dataclass
class _SuperviseOutcome:
    """Everything the supervisor learned from one throughput run."""

    best_cost: float = math.inf
    best_proc: tuple | None = None
    best_start: tuple | None = None
    target: bool = False
    truncated: bool = False
    shards_stale: int = 0
    worker_restarts: int = 0
    shard_retries: int = 0
    quarantined: list = field(default_factory=list)
    #: Per-slot merged counters (a restarted slot keeps accumulating).
    slot_stats: list = field(default_factory=list)
    #: ``(slot, shard_index, [(kind, payload), ...])`` per executed shard.
    events: list = field(default_factory=list)
    #: Per-worker transposition telemetry collected at shutdown; crashed
    #: workers lose theirs (documented undercount).
    worker_tt: list = field(default_factory=list)


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelReport:
    """How a parallel solve was executed (``ParallelBnB.last_report``)."""

    mode: str
    workers: int
    split_depth: int
    #: Subtree shards resolved (deterministic) or collected (throughput).
    shards: int
    #: Shards never searched because a polled incumbent pruned them.
    shards_stale: int = 0
    #: Deterministic mode: speculative runs accepted as-is.
    speculative_hits: int = 0
    #: Deterministic mode: speculations discarded and re-run exactly.
    reruns: int = 0
    #: Throughput mode: per-worker merged counters, in worker order.
    worker_stats: tuple = ()
    #: Worker processes replaced after a crash, hang or pool breakage.
    worker_restarts: int = 0
    #: Shards re-queued (with backoff) after their worker died.
    shard_retries: int = 0
    #: Shard indices abandoned after ``max_shard_attempts`` failures;
    #: non-empty quarantine forces a TRUNCATED result status.
    quarantined: tuple = ()
    #: Merged transposition-table telemetry (coordinator + workers) when
    #: the transposition layer was active, else None.  Counter keys are
    #: summed across processes (each global event happens in exactly one
    #: process); ``tt_capacity`` is the shared geometry.
    tt_stats: dict | None = None


class ParallelBnB:
    """Multiprocessing driver around :class:`BranchAndBound`.

    ``workers=None`` uses one worker per usable CPU; ``split_depth`` is
    the tree level at which subtrees become shards.  See the module doc
    for the two modes; ``last_report`` describes the most recent solve.

    Deterministic mode rejects finite TIMELIMIT / MAXSZAS / MAXSZDB
    bounds (:class:`~repro.errors.ConfigurationError`): wall-clock cuts
    and worst-vertex disposal depend on timing and global generation
    order, which shards cannot reproduce.  The MAXVERT cap *is*
    supported exactly — the budget threads through shard resolution.
    """

    def __init__(
        self,
        params: BnBParameters | None = None,
        *,
        workers: int | None = None,
        split_depth: int = 2,
        deterministic: bool = True,
        fused: bool | None = None,
        obs: Observability | None = None,
        collect_worker_events: bool = False,
        mp_context=None,
        max_shard_attempts: int = 3,
        retry_backoff: float = 0.05,
        backoff_rng: random.Random | None = None,
        heartbeat_timeout: float = 30.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if split_depth < 1:
            raise ConfigurationError(
                f"split_depth must be >= 1, got {split_depth}"
            )
        if max_shard_attempts < 1:
            raise ConfigurationError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        if retry_backoff < 0:
            raise ConfigurationError(
                f"retry_backoff must be >= 0, got {retry_backoff}"
            )
        if heartbeat_timeout <= 0:
            raise ConfigurationError(
                f"heartbeat_timeout must be > 0, got {heartbeat_timeout}"
            )
        self.params = params or BnBParameters()
        self.workers = workers if workers is not None else default_worker_count()
        self.split_depth = split_depth
        self.deterministic = deterministic
        self.fused = fused
        self.obs = obs
        self.collect_worker_events = collect_worker_events
        self._mp_context = mp_context
        self.max_shard_attempts = max_shard_attempts
        self.retry_backoff = retry_backoff
        #: RNG for decorrelated-jitter retry backoff; None seeds a fresh
        #: one (tests inject a seeded instance to pin delays).
        self.backoff_rng = backoff_rng
        self.heartbeat_timeout = heartbeat_timeout
        self.fault_plan = fault_plan
        self.last_report: ParallelReport | None = None

    # ------------------------------------------------------------------

    def solve(self, problem: CompiledProblem) -> BnBResult:
        if self.deterministic:
            return self._solve_deterministic(problem)
        return self._solve_throughput(problem)

    def solve_graph(self, graph, platform) -> BnBResult:
        from ..model.compile import compile_problem

        return self.solve(compile_problem(graph, platform))

    # ------------------------------------------------------------------

    def _ctx(self):
        if self._mp_context is not None:
            return self._mp_context
        return multiprocessing.get_context()

    def _solve_deterministic(self, problem: CompiledProblem) -> BnBResult:
        rb = self.params.resources
        for name in (
            "time_limit", "max_active", "max_children", "max_memory_bytes",
        ):
            if not math.isinf(getattr(rb, name)):
                raise ConfigurationError(
                    "deterministic parallel mode requires unbounded "
                    f"{name}: its effect depends on timing or global "
                    "generation order, which shards cannot reproduce "
                    "(use deterministic=False, or max_vertices, which "
                    "is replayed exactly)"
                )
        if find_transposition(self.params.dominance) is not None:
            raise ConfigurationError(
                "deterministic parallel mode does not support the "
                "transposition layer: the sequential engine feeds one "
                "table across the whole tree, which per-shard replay "
                "cannot reproduce bit-exactly (use deterministic=False "
                "for the shared-table throughput mode, or solve "
                "sequentially)"
            )
        sink = self.obs.sink if self.obs is not None else None
        metrics = self.obs.metrics if self.obs is not None else None

        def make_executor() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx()
            )

        dispatcher = _ReplayDispatcher(
            make_executor, problem, self.params, self.fused,
            self.split_depth, sink,
            max_attempts=self.max_shard_attempts,
            metrics=metrics,
            fault_plan=self.fault_plan,
        )
        try:
            engine = BranchAndBound(self.params, obs=self.obs, fused=self.fused)
            result = engine.solve(problem, dispatcher=dispatcher)
        finally:
            dispatcher.shutdown()
        self.last_report = ParallelReport(
            mode="deterministic",
            workers=self.workers,
            split_depth=self.split_depth,
            shards=dispatcher.shards,
            speculative_hits=dispatcher.speculative_hits,
            reruns=dispatcher.reruns,
            worker_restarts=dispatcher.worker_restarts,
            shard_retries=dispatcher.shard_retries,
        )
        return result

    def _solve_throughput(self, problem: CompiledProblem) -> BnBResult:
        t0 = time.perf_counter()
        params = self.params
        tt_rule = find_transposition(params.dominance)
        shared_tt = None
        tt_mark = 0
        if tt_rule is not None:
            # One lock-striped shared segment for the whole solve: the
            # coordinator's shallow pass seeds it, worker shards prune
            # against (and feed) it.  The coordinator owns its lifetime.
            shared_tt = SharedTranspositionTable.create(
                tt_rule.table_bytes,
                PayloadCodec.for_problem(problem),
                tt_rule.policy,
                ctx=self._ctx(),
            )
            tt_rule.bind_shared(shared_tt)
            tt_mark = tt_rule.spawn_mark()
        try:
            return self._throughput_run(
                problem, t0, tt_rule, shared_tt, tt_mark
            )
        finally:
            if shared_tt is not None:
                tt_rule.bind_shared(None)
                shared_tt.close()

    def _throughput_run(
        self, problem: CompiledProblem, t0, tt_rule, shared_tt, tt_mark
    ) -> BnBResult:
        params = self.params
        collector = _FrontierCollector(self.split_depth, problem, params)
        engine = BranchAndBound(params, obs=self.obs, fused=self.fused)
        shallow = engine.solve(problem, dispatcher=collector)
        shards = collector.shards
        if not shards or shallow.status is SolveStatus.TARGET_REACHED:
            # The shallow pass already completed the search (tiny tree,
            # everything pruned, or early stop before any dispatch).
            self.last_report = ParallelReport(
                mode="throughput",
                workers=self.workers,
                split_depth=self.split_depth,
                shards=len(shards),
                tt_stats=(
                    tt_rule.telemetry_total(tt_mark)
                    if tt_rule is not None
                    else None
                ),
            )
            return shallow

        incumbent0 = min(shallow.best_cost, shallow.initial_upper_bound)
        threshold0 = pruning_threshold(incumbent0, params.inaccuracy)
        elim = params.elimination
        live = [
            s
            for s in shards
            if not elim.should_prune(s.lower_bound, threshold0)
        ]
        merged = SearchStats()
        merged.absorb(shallow.stats)
        # Shards collected before a later shallow incumbent improvement
        # would have been swept by the sequential engine; count them so.
        merged.pruned_active += len(shards) - len(live)

        budget = params.resources.max_vertices - shallow.stats.generated
        best_cost = shallow.best_cost
        best_proc = shallow.proc_of
        best_start = shallow.start
        target = False
        worker_stats: tuple = ()
        sup: _SuperviseOutcome | None = None
        if live and budget > 0:
            sup = self._supervise(
                problem, live, budget, incumbent0, shared_tt
            )
            for slot_stats in sup.slot_stats:
                merged.absorb(slot_stats)
            worker_stats = tuple(sup.slot_stats)
            target = sup.target
            if sup.truncated:
                merged.truncated = True
            if sup.best_proc is not None and sup.best_cost < best_cost:
                best_cost = sup.best_cost
                best_proc = sup.best_proc
                best_start = sup.best_start
        elif budget <= 0:
            merged.truncated = True

        sink = self.obs.sink if self.obs is not None else None
        if sink is not None and self.collect_worker_events and sup is not None:
            for slot, shard_index, shard_events in sup.events:
                tagged = TaggedSink(sink, worker=slot, shard=shard_index)
                for kind, payload in shard_events:
                    if tagged.accepts(kind):
                        tagged.emit(kind, payload)

        merged.elapsed = time.perf_counter() - t0
        found = best_proc is not None
        status = BranchAndBound._status(params, merged, target, found)
        monitor = self.obs.live if self.obs is not None else None
        if monitor is not None:
            monitor.bus.update(
                phase="done",
                result_status=status.value,
                incumbent=best_cost if found else None,
                explored=merged.explored,
                generated=merged.generated,
                elapsed=round(merged.elapsed, 3),
                vps=round(merged.vertices_per_second or 0.0, 1),
            )
            monitor.bus.record_event(
                "parallel_done",
                {"status": status.value, "workers": self.workers},
            )
        incumbent_source = (
            "search"
            if found and best_cost < shallow.initial_upper_bound
            else shallow.incumbent_source
        )
        tt_stats = None
        if tt_rule is not None:
            tt_stats = tt_rule.telemetry_total(tt_mark)
            for worker_tt in sup.worker_tt if sup is not None else ():
                if not worker_tt:
                    continue
                for k, v in worker_tt.items():
                    if k == "tt_capacity":
                        tt_stats[k] = v
                    else:
                        # Process-local views sum to the global count:
                        # every hit/miss/insert/fill happens in exactly
                        # one process.
                        tt_stats[k] = tt_stats.get(k, 0) + v
        self.last_report = ParallelReport(
            mode="throughput",
            workers=self.workers,
            split_depth=self.split_depth,
            shards=len(shards),
            shards_stale=(len(shards) - len(live))
            + (sup.shards_stale if sup is not None else 0),
            worker_stats=worker_stats,
            worker_restarts=sup.worker_restarts if sup is not None else 0,
            shard_retries=sup.shard_retries if sup is not None else 0,
            quarantined=tuple(sup.quarantined) if sup is not None else (),
            tt_stats=tt_stats,
        )
        return BnBResult(
            problem=problem,
            params=params,
            status=status,
            best_cost=best_cost if found else math.inf,
            proc_of=best_proc,
            start=best_start,
            incumbent_source=incumbent_source,
            initial_upper_bound=shallow.initial_upper_bound,
            stats=merged,
        )

    def _supervise(
        self,
        problem: CompiledProblem,
        live: list[_Shard],
        budget: float,
        incumbent0: float,
        shared_tt,
    ) -> _SuperviseOutcome:
        """Run the live shards under worker supervision.

        Shards are handed to idle workers one at a time (dynamic load
        balancing — no static blocks to strand behind a slow shard).  A
        worker that dies, breaks its pipe, or stops stamping its
        heartbeat is replaced; its shard is re-queued with capped
        exponential backoff plus decorrelated jitter (shards orphaned
        together must not retry in lockstep — see
        :class:`~repro.core.shards.BackoffPolicy`), and after
        ``max_shard_attempts`` failures the shard is quarantined: the
        run finishes without it, reports it, and is marked TRUNCATED.
        The incumbent can never be lost to a crash — improvements are
        published to the shared value the moment a worker finds them.
        """
        ctx = self._ctx()
        nslots = max(1, min(self.workers, len(live)))
        shared = ctx.Value("d", incumbent0)
        beats = ctx.Array("d", nslots, lock=False)
        tt_handle = shared_tt.handle() if shared_tt is not None else None
        out = _SuperviseOutcome(
            slot_stats=[SearchStats() for _ in range(nslots)]
        )
        user_sink = self.obs.sink if self.obs is not None else None
        monitor = self.obs.live if self.obs is not None else None
        progress = self.obs.progress if self.obs is not None else None
        # Coordinator events (worker_restart/shard_retry/quarantine)
        # mirror into the live bus exactly like engine events do.
        sink = (
            user_sink if monitor is None
            else monitor.compose_sink(user_sink)
        )
        metrics = self.obs.metrics if self.obs is not None else None
        stats_interval = monitor.interval if monitor is not None else None
        restarts_by_slot = [0] * nslots
        sup_t0 = time.monotonic()
        next_coord_sample = 0.0
        last_incumbent_seen = incumbent0
        pending = RetryQueue(
            max_attempts=self.max_shard_attempts,
            backoff=BackoffPolicy(
                base=self.retry_backoff,
                rng=self.backoff_rng
                if self.backoff_rng is not None
                else random.Random(),
            ),
        )
        for s in live:
            pending.add(s)
        remaining = budget
        stop = False

        def spawn(slot: int) -> _WorkerHandle:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_supervised_worker,
                args=(
                    child, slot, beats, shared, problem, self.params,
                    self.fused, self.collect_worker_events, tt_handle,
                    self.fault_plan, stats_interval,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            beats[slot] = time.monotonic()
            return _WorkerHandle(proc=proc, conn=parent, slot=slot)

        def reclaim(worker: _WorkerHandle, cause: str) -> _WorkerHandle:
            """Restart a dead/hung worker's slot; requeue or quarantine
            the shard it was holding."""
            shard, attempt = worker.task
            worker.task = None
            out.worker_restarts += 1
            restarts_by_slot[worker.slot] += 1
            if monitor is not None:
                monitor.on_worker_down(
                    worker.slot, restarts_by_slot[worker.slot]
                )
            if metrics is not None:
                metrics.counter("bnb_worker_restart_total").inc()
            if sink is not None and sink.accepts("worker_restart"):
                sink.emit(
                    "worker_restart",
                    {
                        "mode": "throughput",
                        "slot": worker.slot,
                        "shard": shard.index,
                        "attempt": attempt,
                        "cause": cause,
                    },
                )
            try:
                worker.conn.close()
            except OSError:
                pass
            delay = pending.requeue(shard, attempt, time.monotonic())
            if delay is None:
                out.quarantined.append(shard.index)
                out.truncated = True  # search incomplete: never report OPTIMAL
                if sink is not None and sink.accepts("quarantine"):
                    sink.emit(
                        "quarantine",
                        {
                            "shard": shard.index,
                            "attempts": attempt,
                            "cause": cause,
                        },
                    )
            else:
                out.shard_retries += 1
                if metrics is not None:
                    metrics.counter("bnb_shard_retry_total").inc()
                if sink is not None and sink.accepts("shard_retry"):
                    sink.emit(
                        "shard_retry",
                        {
                            "shard": shard.index,
                            "attempt": attempt + 1,
                            "delay": delay,
                            "cause": cause,
                        },
                    )
            return spawn(worker.slot)

        workers = [spawn(i) for i in range(nslots)]
        try:
            while True:
                for i, worker in enumerate(workers):
                    if worker.task is not None or stop:
                        continue
                    task = pending.pop_eligible(time.monotonic())
                    if task is None:
                        break
                    shard, attempt = task
                    worker.task = (shard, attempt)
                    beats[worker.slot] = time.monotonic()
                    try:
                        worker.conn.send(
                            (
                                "run", shard.index, shard.state,
                                shard.lower_bound, attempt, remaining,
                            )
                        )
                    except (BrokenPipeError, OSError):
                        workers[i] = reclaim(worker, "pipe closed")
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    if stop or not pending:
                        break
                    time.sleep(0.01)  # everything pending is backing off
                    continue
                ready = _conn_wait([w.conn for w in busy], timeout=0.05)
                now = time.monotonic()
                for i, worker in enumerate(workers):
                    if worker.task is None:
                        continue
                    if worker.conn in ready:
                        try:
                            msg = worker.conn.recv()
                        except (EOFError, OSError):
                            workers[i] = reclaim(worker, "worker died")
                            continue
                        kind = msg[0]
                        if kind == "stats":
                            # Mid-shard WorkerStats frame: per-worker
                            # gauges only; the shard stays in flight.
                            _, shard_index, explored_approx, vps = msg
                            if monitor is not None:
                                monitor.on_worker_frame(
                                    worker.slot,
                                    shard=shard_index,
                                    explored=explored_approx,
                                    vps=vps,
                                    restarts=restarts_by_slot[worker.slot],
                                )
                            continue
                        if kind == "stale":
                            # Count exactly like the sequential sweep
                            # dropping a now-dominated active vertex.
                            out.shards_stale += 1
                            out.slot_stats[worker.slot].pruned_active += 1
                            worker.task = None
                        elif kind == "error":
                            raise msg[2]
                        elif kind == "done":
                            (
                                _, shard_index, wstats, bcost, bproc,
                                bstart, treached, shard_events,
                            ) = msg
                            out.slot_stats[worker.slot].absorb(wstats)
                            remaining -= wstats.generated
                            if bproc is not None and bcost < out.best_cost:
                                out.best_cost = bcost
                                out.best_proc = bproc
                                out.best_start = bstart
                            if shard_events is not None:
                                out.events.append(
                                    (worker.slot, shard_index, shard_events)
                                )
                            if treached:
                                out.target = True
                                stop = True
                            if remaining <= 0:
                                out.truncated = True
                                stop = True
                            worker.task = None
                    elif not worker.proc.is_alive():
                        workers[i] = reclaim(
                            worker, f"exit code {worker.proc.exitcode}"
                        )
                    elif now - beats[worker.slot] > self.heartbeat_timeout:
                        worker.proc.terminate()
                        worker.proc.join(timeout=5.0)
                        workers[i] = reclaim(worker, "heartbeat timeout")
                if (monitor is not None or progress is not None) and (
                    time.monotonic() >= next_coord_sample
                ):
                    # Coordinator-side sample: aggregate worker gauges,
                    # the open shard bound (pending + in-flight shards
                    # bound everything the run has not yet explored) and
                    # the shared incumbent into the bus and heartbeat.
                    next_coord_sample = time.monotonic() + (
                        monitor.interval
                        if monitor is not None
                        else progress.interval
                    )
                    alive_count = sum(
                        1 for w in workers if w.proc.is_alive()
                    )
                    inc_now = shared.value
                    open_lb = pending.min_lower_bound()
                    for w in workers:
                        if w.task is not None:
                            lb = w.task[0].lower_bound
                            if open_lb is None or lb < open_lb:
                                open_lb = lb
                    gap = None
                    if open_lb is not None and not math.isinf(inc_now):
                        gap = max(0.0, inc_now - open_lb)
                    explored_done = sum(s.explored for s in out.slot_stats)
                    generated_done = sum(
                        s.generated for s in out.slot_stats
                    )
                    if monitor is not None:
                        if inc_now < last_incumbent_seen:
                            last_incumbent_seen = inc_now
                            monitor.bus.record_event(
                                "incumbent",
                                {
                                    "cost": inc_now,
                                    "elapsed": round(
                                        time.monotonic() - sup_t0, 3
                                    ),
                                    "source": "worker",
                                },
                            )
                        _, vps_total = monitor.bus.worker_totals()
                        elapsed_sup = time.monotonic() - sup_t0
                        monitor.bus.update(
                            phase="solving",
                            incumbent=(
                                None if math.isinf(inc_now) else inc_now
                            ),
                            open_lower_bound=open_lb,
                            gap=gap,
                            vps=round(vps_total, 1),
                            workers_alive=alive_count,
                            queue_depth=len(pending),
                            explored=explored_done,
                            generated=generated_done,
                            elapsed=round(elapsed_sup, 3),
                        )
                        monitor.bus.add_sample(elapsed_sup, gap, vps_total)
                        monitor.last_gap = gap
                    if progress is not None:
                        progress.maybe_emit(
                            explored=explored_done,
                            generated=generated_done,
                            active=len(pending)
                            + sum(
                                1 for w in workers if w.task is not None
                            ),
                            incumbent=inc_now,
                            gap=gap,
                            workers_alive=alive_count,
                        )
            if pending and not out.target:
                # Budget ran out with shards still queued: they are
                # deliberately unexplored, exactly like the sequential
                # engine truncating its sweep.
                out.truncated = True
        finally:
            for worker in workers:
                try:
                    worker.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 5.0
            for worker in workers:
                try:
                    while worker.conn.poll(
                        max(0.0, deadline - time.monotonic())
                    ):
                        msg = worker.conn.recv()
                        if msg[0] == "bye":
                            if msg[1]:
                                out.worker_tt.append(msg[1])
                            break
                except (EOFError, OSError):
                    pass
                try:
                    worker.conn.close()
                except OSError:
                    pass
            for worker in workers:
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():
                    worker.proc.terminate()
                    worker.proc.join(timeout=2.0)
        return out


def solve_parallel(
    problem: CompiledProblem,
    params: BnBParameters | None = None,
    *,
    workers: int | None = None,
    deterministic: bool = True,
    split_depth: int = 2,
    fused: bool | None = None,
) -> BnBResult:
    """One-shot convenience wrapper around :class:`ParallelBnB`."""
    return ParallelBnB(
        params,
        workers=workers,
        split_depth=split_depth,
        deterministic=deterministic,
        fused=fused,
    ).solve(problem)
