"""Native chunked search driver for the array engine (``--engine array``).

The numpy batch expander removes per-child bound recursions, but the
engine's Python loop still costs microseconds per explored vertex
(frontier heap ops, Vertex objects, counter updates).  This module
compiles — at import time, with the system C compiler — a small C
kernel that owns the *whole* pop → expand → push loop over the
:class:`~repro.core.arena.StateArena` columns, returning to Python only
at the points where the engine would do something the kernel cannot
(time/memory checks, arena/frontier growth, limit handling, branching
errors).

Parity contract
---------------

The kernel is a line-by-line transcription of the fused hot path
(`FusedExpander.expand`, the incremental LB0/LB1 evaluators, the
frontier disciplines and the engine loop's step ordering), compiled
with ``-ffp-contract=off`` and without ``-march=native`` so every float
expression performs exactly the IEEE-754 double operations the Python
code performs, in the same association order.  Sequence numbers, all
``SearchStats`` counters, the incumbent, the pruning threshold and the
exploration order are bit-identical to the object engine; the
equivalence sweep and the exhaustive oracle gate this per commit.

The driver only engages for configurations it replicates exactly
(uniform interconnect, trivial/LB0/LB1 bounds, BFn/fixed-order
branching, LIFO/FIFO/LLB/LLB-D selection, U-DBAS or no elimination,
no dominance/characteristic hooks, no telemetry or fault-tolerance
plumbing); the engine silently falls back to the per-expansion paths
otherwise.

Chunk protocol
--------------

``arena_drive`` runs until it must hand control back, reporting why in
``ctx.status``:

=================  ====================================================
``ST_DONE``        frontier exhausted — search complete
``ST_BOUNDSTOP``   best-first stop: popped bound met the threshold
``ST_CHECK``       periodic check boundary; the in-hand vertex is
                   parked in ``pend_*`` exactly where the Python loop
                   holds it for its time/memory checks
``ST_MAXVERT``     generated-vertex cap reached (engine decides raise
                   vs truncate)
``ST_GROW_ARENA``  fewer than ``n*m`` free rows — grow and re-enter
``ST_GROW_FRONT``  frontier arrays full — grow and re-enter
``ST_ERR_NOT_READY`` fixed branching order violated; Python re-raises
                   the identical ConfigurationError
=================  ====================================================

Growth returns leave every piece of search state (including a parked
pending vertex) untouched; Python reallocates, refreshes the context
pointers and re-enters.  Set ``REPRO_NO_NATIVE=1`` to disable the
kernel entirely (the numpy path then serves ``--engine array``).
"""

from __future__ import annotations

import ctypes
import hashlib
import math
import os
import subprocess
import tempfile

import numpy as np

__all__ = ["native_available", "load_native", "NativeDriver"]


_C_SOURCE = r"""
#include <stdint.h>
#include <string.h>
#include <math.h>

enum {
    ST_DONE = 0,
    ST_BOUNDSTOP = 1,
    ST_CHECK = 2,
    ST_MAXVERT = 3,
    ST_GROW_ARENA = 4,
    ST_GROW_FRONT = 5,
    ST_ERR_NOT_READY = 6
};

typedef struct {
    /* problem tables (read-only) */
    const double *wcet;
    const double *arrival;
    const double *deadline;
    const double *tail_lat;
    const double *tail;
    const int64_t *pred_off;
    const int64_t *pred_idx;
    const double *pred_size;
    const int64_t *succ_off;
    const int64_t *succ_idx;
    const int64_t *topo;
    const int64_t *topo_pos;
    const uint64_t *pred_mask;
    const uint64_t *srm;
    const int64_t *fixed_order;
    /* arena columns */
    uint64_t *a_sched;
    uint64_t *a_ready;
    int32_t *a_level;
    double *a_lat;
    double *a_lmin;
    int16_t *a_last_task;
    int16_t *a_last_proc;
    int8_t *a_proc;
    double *a_start;
    double *a_finish;
    double *a_avail;
    double *a_est;
    double *a_estart;
    int32_t *free_stack;
    /* frontier arrays */
    double *fr_lb;
    int64_t *fr_seq;
    int32_t *fr_slot;
    int32_t *fr_level;
    /* scratch */
    double *sc_est;
    double *sc_estart;
    double *cand_e;
    int64_t *cand_rank;
    double *floc;
    int64_t *procs_buf;
    int64_t *tasks_buf;
    double *ch_lb;
    int64_t *ch_seq;
    int32_t *ch_slot;
    int8_t *best_proc;
    double *best_start;
    /* doubles */
    double ud;
    double eps;
    double maxd;
    double inaccuracy;
    double threshold;
    double incumbent;
    double found_cost;
    double fr_threshold;
    double pend_lb;
    double exp_goal_cost;
    double exp_goal_s;
    double exp_goal_f;
    double parent_lmin;
    double lmin2;
    /* int64 config + counters */
    int64_t n;
    int64_t m;
    int64_t fr_cap;
    int64_t frontier_kind;   /* 0 LIFO, 1 FIFO, 2 LLB, 3 LLB-D */
    int64_t bound_kind;      /* 0 trivial, 1 LB0, 2 LB1 */
    int64_t child_order;     /* 0 generation, 1 best-last, 2 best-first */
    int64_t elim_none;
    int64_t stop_on_bound;
    int64_t break_symmetry;
    int64_t branch_fixed;
    int64_t seq;
    int64_t generated;
    int64_t explored;
    int64_t goals_evaluated;
    int64_t pruned_children;
    int64_t pruned_active;
    int64_t incumbent_updates;
    int64_t peak_active;
    int64_t max_vertices;
    int64_t fr_len;
    int64_t fr_head;
    int64_t fr_live;
    int64_t nfree;
    int64_t pend_valid;
    int64_t pend_slot;
    int64_t pend_seq;
    int64_t check_mask;
    int64_t best_found;
    int64_t status;
    int64_t err_slot;
    int64_t exp_goal_found;
    int64_t exp_goal_task;
    int64_t exp_goal_proc;
    int64_t nk;
    int64_t have_pend;
    int64_t cand_built;
    int64_t cand_n;
} ctx_t;

int64_t ctx_size(void) { return (int64_t)sizeof(ctx_t); }

static void slot_free(ctx_t *c, int64_t slot) {
    c->free_stack[c->nfree++] = (int32_t)slot;
}

/* ---------------------------------------------------------------- */
/* Frontier disciplines                                              */
/* ---------------------------------------------------------------- */

static int fr_less_i(const ctx_t *c, int64_t i, int64_t j) {
    double a = c->fr_lb[i], b = c->fr_lb[j];
    if (a != b) return a < b;
    if (c->frontier_kind == 3) {
        int32_t la = c->fr_level[i], lj = c->fr_level[j];
        if (la != lj) return la > lj;   /* deeper first */
    }
    return c->fr_seq[i] < c->fr_seq[j];
}

static void fr_swap(ctx_t *c, int64_t i, int64_t j) {
    double tl = c->fr_lb[i]; c->fr_lb[i] = c->fr_lb[j]; c->fr_lb[j] = tl;
    int64_t ts = c->fr_seq[i]; c->fr_seq[i] = c->fr_seq[j]; c->fr_seq[j] = ts;
    int32_t tt = c->fr_slot[i]; c->fr_slot[i] = c->fr_slot[j]; c->fr_slot[j] = tt;
    int32_t tv = c->fr_level[i]; c->fr_level[i] = c->fr_level[j]; c->fr_level[j] = tv;
}

static void heap_sift_down(ctx_t *c, int64_t i, int64_t len) {
    for (;;) {
        int64_t l = 2 * i + 1, r = l + 1, s = i;
        if (l < len && fr_less_i(c, l, s)) s = l;
        if (r < len && fr_less_i(c, r, s)) s = r;
        if (s == i) break;
        fr_swap(c, i, s);
        i = s;
    }
}

static void heap_sift_up(ctx_t *c, int64_t i) {
    while (i > 0) {
        int64_t p = (i - 1) / 2;
        if (fr_less_i(c, i, p)) { fr_swap(c, i, p); i = p; }
        else break;
    }
}

static void fr_push(ctx_t *c, double lb, int64_t sq, int64_t slot, int64_t level) {
    if (c->frontier_kind < 2) {
        int64_t i = c->fr_len++;
        c->fr_lb[i] = lb; c->fr_seq[i] = sq;
        c->fr_slot[i] = (int32_t)slot; c->fr_level[i] = (int32_t)level;
        return;
    }
    /* LLB: mirror the Python frontier's silent refusal of entries at
       or above the last pruned threshold. */
    if (lb >= c->fr_threshold) { slot_free(c, slot); return; }
    int64_t i = c->fr_len++;
    c->fr_lb[i] = lb; c->fr_seq[i] = sq;
    c->fr_slot[i] = (int32_t)slot; c->fr_level[i] = (int32_t)level;
    c->fr_live++;
    heap_sift_up(c, i);
}

static int fr_pop(ctx_t *c, int64_t *slot, double *lb, int64_t *sq) {
    if (c->frontier_kind == 0) {          /* LIFO: pop the tail */
        if (c->fr_len == 0) return 0;
        c->fr_len--;
        *lb = c->fr_lb[c->fr_len]; *sq = c->fr_seq[c->fr_len];
        *slot = c->fr_slot[c->fr_len];
        return 1;
    }
    if (c->frontier_kind == 1) {          /* FIFO: pop the head */
        if (c->fr_head >= c->fr_len) return 0;
        *lb = c->fr_lb[c->fr_head]; *sq = c->fr_seq[c->fr_head];
        *slot = c->fr_slot[c->fr_head];
        c->fr_head++;
        return 1;
    }
    while (c->fr_len > 0) {               /* LLB heap, lazy deletion */
        double l = c->fr_lb[0]; int64_t q = c->fr_seq[0];
        int32_t sl = c->fr_slot[0];
        c->fr_len--;
        if (c->fr_len > 0) {
            c->fr_lb[0] = c->fr_lb[c->fr_len];
            c->fr_seq[0] = c->fr_seq[c->fr_len];
            c->fr_slot[0] = c->fr_slot[c->fr_len];
            c->fr_level[0] = c->fr_level[c->fr_len];
            heap_sift_down(c, 0, c->fr_len);
        }
        if (l >= c->fr_threshold) {       /* stale: already counted */
            slot_free(c, sl);
            continue;
        }
        c->fr_live--;
        *lb = l; *sq = q; *slot = sl;
        return 1;
    }
    return 0;
}

static int64_t fr_prune_above(ctx_t *c, double t) {
    if (c->frontier_kind < 2) {
        int64_t cnt = 0, w = 0;
        for (int64_t i = c->fr_head; i < c->fr_len; i++) {
            if (c->fr_lb[i] < t) {
                c->fr_lb[w] = c->fr_lb[i]; c->fr_seq[w] = c->fr_seq[i];
                c->fr_slot[w] = c->fr_slot[i]; c->fr_level[w] = c->fr_level[i];
                w++;
            } else { cnt++; slot_free(c, c->fr_slot[i]); }
        }
        c->fr_head = 0; c->fr_len = w;
        return cnt;
    }
    double old = c->fr_threshold;
    int64_t cnt = 0;
    if (t < old) {
        for (int64_t i = 0; i < c->fr_len; i++) {
            double l = c->fr_lb[i];
            if (l >= t && l < old) cnt++;
        }
        c->fr_live -= cnt;
        c->fr_threshold = t;
        if (cnt && c->fr_live < c->fr_len / 2) {
            int64_t w = 0;
            for (int64_t i = 0; i < c->fr_len; i++) {
                if (c->fr_lb[i] < t) {
                    c->fr_lb[w] = c->fr_lb[i]; c->fr_seq[w] = c->fr_seq[i];
                    c->fr_slot[w] = c->fr_slot[i]; c->fr_level[w] = c->fr_level[i];
                    w++;
                } else slot_free(c, c->fr_slot[i]);
            }
            c->fr_len = w;
            for (int64_t i = w / 2 - 1; i >= 0; i--) heap_sift_down(c, i, w);
        }
    }
    return cnt;
}

static int64_t fr_active(const ctx_t *c) {
    return c->frontier_kind < 2 ? c->fr_len - c->fr_head : c->fr_live;
}

/* ---------------------------------------------------------------- */
/* Incremental bounds (verbatim transcriptions of bounds.py)         */
/* ---------------------------------------------------------------- */

static void build_candidates(ctx_t *c, const double *pestart, uint64_t psched) {
    double cap = c->lmin2;
    int64_t cn = 0;
    for (int64_t i = 0; i < c->n; i++) {
        if (pestart[i] < cap && !((psched >> i) & 1)) {
            c->cand_e[cn] = pestart[i];
            c->cand_rank[cn] = c->topo_pos[i];
            cn++;
        }
    }
    c->cand_n = cn;
    c->cand_built = 1;
}

/* Child bound for LB0 (bound_kind 1) / LB1 (bound_kind 2).
   *fast_commit: 1 -> child vectors are parent's with estart[t] = f;
                 0 -> child vectors are in sc_est/sc_estart. */
static double inc_child_c(ctx_t *c, const double *pest, const double *pestart,
                          uint64_t psched, double parent_lb, int64_t t, double f,
                          uint64_t smask, double lmin, int lchanged,
                          int *fast_commit) {
    const int64_t n = c->n;
    const int lb1 = (c->bound_kind == 2);
    double old = pest[t];
    if (f == old) {
        int fast_ok;
        if (!lb1) fast_ok = 1;
        else {
            fast_ok = !lchanged;
            if (!fast_ok && c->have_pend) {
                if (!c->cand_built) build_candidates(c, pestart, psched);
                fast_ok = 1;
                for (int64_t i = 0; i < c->cand_n; i++) {
                    if (c->cand_e[i] < lmin) { fast_ok = 0; break; }
                }
            }
        }
        if (fast_ok) {
            *fast_commit = 1;
            double lb = f - c->deadline[t];
            return lb > parent_lb ? lb : parent_lb;
        }
    }
    *fast_commit = 0;
    memcpy(c->sc_est, pest, (size_t)n * 8);
    memcpy(c->sc_estart, pestart, (size_t)n * 8);
    double *est = c->sc_est;
    double *estart = c->sc_estart;
    est[t] = f;
    estart[t] = f;
    double lb = f - c->deadline[t];
    if (lb < parent_lb) lb = parent_lb;
    uint64_t dirty = (f == old) ? 0 : c->srm[t];
    if (lb1 && lchanged) {
        /* begin() always ran for this batch: lmin moved only when the
           parent minimum was unique. */
        if (!c->cand_built) build_candidates(c, pestart, psched);
        for (int64_t i = 0; i < c->cand_n; i++) {
            if (c->cand_e[i] < lmin) dirty |= 1ull << c->cand_rank[i];
        }
    }
    while (dirty) {
        int64_t r = (int64_t)__builtin_ctzll(dirty);
        dirty &= dirty - 1;
        int64_t i = c->topo[r];
        if ((smask >> i) & 1) continue;
        double e;
        if (lb1) { double a = c->arrival[i]; e = a > lmin ? a : lmin; }
        else e = c->arrival[i];
        for (int64_t k = c->pred_off[i]; k < c->pred_off[i + 1]; k++) {
            double fj = est[c->pred_idx[k]];
            if (fj > e) e = fj;
        }
        estart[i] = e;
        double ne = e + c->wcet[i];
        if (ne != est[i]) {
            est[i] = ne;
            dirty |= c->srm[i];
            double lat = ne - c->deadline[i];
            if (lat > lb) lb = lat;
        }
    }
    return lb;
}

/* ---------------------------------------------------------------- */
/* Expansion (verbatim transcription of FusedExpander.expand)        */
/* ---------------------------------------------------------------- */

static int64_t expand_vertex(ctx_t *c, int64_t ps, double parent_lb) {
    const int64_t n = c->n, m = c->m;
    const uint64_t ready = c->a_ready[ps];
    const uint64_t sched = c->a_sched[ps];
    const int64_t level = c->a_level[ps];
    const double plat = c->a_lat[ps];
    const double *pav = c->a_avail + ps * m;
    const double *pfin = c->a_finish + ps * n;
    const double *pstart = c->a_start + ps * n;
    const int8_t *ppo = c->a_proc + ps * n;
    const double *pest = c->a_est ? c->a_est + ps * n : 0;
    const double *pestart = c->a_estart ? c->a_estart + ps * n : 0;

    c->nk = 0;
    c->exp_goal_found = 0;

    int64_t nt = 0;
    if (c->branch_fixed) {
        int64_t t = c->fixed_order[level];
        if (!((ready >> t) & 1)) return ST_ERR_NOT_READY;
        c->tasks_buf[nt++] = t;
    } else {
        uint64_t r = ready;
        while (r) {
            c->tasks_buf[nt++] = (int64_t)__builtin_ctzll(r);
            r &= r - 1;
        }
    }

    int64_t np = 0;
    if (c->break_symmetry) {
        int seen = 0;
        for (int64_t q = 0; q < m; q++) {
            if (pav[q] == 0.0) {
                if (seen) continue;
                seen = 1;
            }
            c->procs_buf[np++] = q;
        }
    } else {
        for (int64_t q = 0; q < m; q++) c->procs_buf[np++] = q;
    }

    const int uses_lmin = (c->bound_kind == 2);
    double parent_lmin = 0.0, lmin2 = INFINITY;
    int64_t nmin = 0;
    if (uses_lmin) {
        parent_lmin = c->a_lmin[ps];
        for (int64_t q = 0; q < m; q++) {
            double a = pav[q];
            if (a == parent_lmin) nmin++;
            else if (a < lmin2) lmin2 = a;
        }
    }
    c->have_pend = uses_lmin && nmin == 1;
    c->cand_built = 0;
    c->parent_lmin = parent_lmin;
    c->lmin2 = lmin2;

    const int goal_children = (level == n - 1);
    const int64_t clevel = level + 1;
    const double eps = c->eps, maxd = c->maxd, ud = c->ud;
    const double threshold = c->threshold;
    double goal_best = INFINITY;

    if (!goal_children) c->generated += nt * np;

    for (int64_t ti = 0; ti < nt; ti++) {
        const int64_t t = c->tasks_buf[ti];
        const double wt = c->wcet[t];
        const double dl = c->deadline[t];
        const double arr = c->arrival[t];
        const double tl = c->tail_lat[t];
        const double tb = c->tail[t];
        const uint64_t bit = 1ull << t;
        const uint64_t cmask = sched | bit;

        /* one pass over predecessors: local-finish per host plus the
           top-two remote arrivals by host (same update order as the
           fused Python loop, so ties resolve identically). */
        for (int64_t q = 0; q < m; q++) c->floc[q] = -INFINITY;
        double r1 = -INFINITY, r2 = -INFINITY;
        int64_t h1 = -1;
        for (int64_t k = c->pred_off[t]; k < c->pred_off[t + 1]; k++) {
            int64_t j = c->pred_idx[k];
            double fj = pfin[j];
            int64_t pj = ppo[j];
            if (fj > c->floc[pj]) c->floc[pj] = fj;
            double rj = fj + c->pred_size[k] * ud;
            if (pj == h1) {
                if (rj > r1) r1 = rj;
            } else if (rj > r1) {
                r2 = r1; r1 = rj; h1 = pj;
            } else if (rj > r2) {
                r2 = rj;
            }
        }

        uint64_t cready_t = 0;
        if (!goal_children) {
            cready_t = ready & ~bit;
            for (int64_t k = c->succ_off[t]; k < c->succ_off[t + 1]; k++) {
                int64_t j = c->succ_idx[k];
                if (!((cmask >> j) & 1) && (c->pred_mask[j] & ~cmask) == 0)
                    cready_t |= 1ull << j;
            }
        }

        for (int64_t qi = 0; qi < np; qi++) {
            const int64_t q = c->procs_buf[qi];
            const double ap = pav[q];
            double s = arr;
            if (ap > s) s = ap;
            double fl = c->floc[q];
            if (fl > s) s = fl;
            double rmax = (h1 == q) ? r2 : r1;
            if (rmax > s) s = rmax;
            double f = s + wt;

            if (goal_children) {
                c->generated++;
                c->goals_evaluated++;
                /* At the goal level the incremental child bound is the
                   closed form max(parent_lb, f - D): the walk is a
                   proven no-op (all successors scheduled) for the
                   trivial/LB0/LB1 evaluators the driver supports. */
                double lb = f - dl;
                if (lb < parent_lb) lb = parent_lb;
                if (lb < goal_best) {
                    goal_best = lb;
                    c->exp_goal_found = 1;
                    c->exp_goal_cost = lb;
                    c->exp_goal_task = t;
                    c->exp_goal_proc = q;
                    c->exp_goal_s = s;
                    c->exp_goal_f = f;
                }
                continue;
            }

            if (!c->elim_none) {
                double floor = f - dl;
                if (floor < parent_lb) floor = parent_lb;
                if (floor >= threshold) { c->pruned_children++; c->seq++; continue; }
                if (c->bound_kind != 0) {
                    double as = s >= 0.0 ? s : -s;
                    double press = s + tl - eps * (as + tb + maxd);
                    if (press >= threshold) { c->pruned_children++; c->seq++; continue; }
                }
            }

            double lmin = parent_lmin;
            int lchanged = 0;
            if (uses_lmin) {
                if (ap != parent_lmin || nmin > 1) {
                    lmin = parent_lmin;
                    lchanged = 0;
                } else {
                    lmin = lmin2 < f ? lmin2 : f;
                    lchanged = (lmin != parent_lmin);
                }
            }
            double clb;
            int fast_commit = 0;
            if (c->bound_kind == 0) {
                clb = f - dl;
                if (clb < parent_lb) clb = parent_lb;
            } else {
                clb = inc_child_c(c, pest, pestart, sched, parent_lb, t, f,
                                  cmask, lmin, lchanged, &fast_commit);
            }
            if (!c->elim_none && clb >= threshold) { c->pruned_children++; c->seq++; continue; }

            /* keep: materialize the child row */
            int64_t cs = (int64_t)c->free_stack[--c->nfree];
            c->a_sched[cs] = cmask;
            c->a_ready[cs] = cready_t;
            c->a_level[cs] = (int32_t)clevel;
            double lat = f - dl;
            if (lat < plat) lat = plat;
            c->a_lat[cs] = lat;
            c->a_last_task[cs] = (int16_t)t;
            c->a_last_proc[cs] = (int16_t)q;
            memcpy(c->a_proc + cs * n, ppo, (size_t)n);
            memcpy(c->a_start + cs * n, pstart, (size_t)n * 8);
            memcpy(c->a_finish + cs * n, pfin, (size_t)n * 8);
            memcpy(c->a_avail + cs * m, pav, (size_t)m * 8);
            c->a_proc[cs * n + t] = (int8_t)q;
            c->a_start[cs * n + t] = s;
            c->a_finish[cs * n + t] = f;
            c->a_avail[cs * m + q] = f;
            if (uses_lmin) c->a_lmin[cs] = lmin;
            else {
                const double *cav = c->a_avail + cs * m;
                double mn = cav[0];
                for (int64_t q2 = 1; q2 < m; q2++) if (cav[q2] < mn) mn = cav[q2];
                c->a_lmin[cs] = mn;
            }
            if (c->bound_kind != 0) {
                double *ce = c->a_est + cs * n;
                double *cse = c->a_estart + cs * n;
                if (fast_commit) {
                    memcpy(ce, pest, (size_t)n * 8);
                    memcpy(cse, pestart, (size_t)n * 8);
                    cse[t] = f;
                } else {
                    memcpy(ce, c->sc_est, (size_t)n * 8);
                    memcpy(cse, c->sc_estart, (size_t)n * 8);
                }
            }
            c->ch_lb[c->nk] = clb;
            c->ch_seq[c->nk] = c->seq;
            c->ch_slot[c->nk] = (int32_t)cs;
            c->nk++;
            c->seq++;
        }
    }
    if (goal_children && c->exp_goal_found) c->exp_goal_cost = goal_best;
    return -1;
}

/* ---------------------------------------------------------------- */
/* The chunked engine loop                                           */
/* ---------------------------------------------------------------- */

void arena_drive(ctx_t *c) {
    const int64_t worst = c->n * c->m;
    for (;;) {
        /* capacity preflight — before the pop AND before resuming a
           parked pending vertex, so growth returns are always clean. */
        if (c->nfree < worst) { c->status = ST_GROW_ARENA; return; }
        if (c->fr_len + worst + 1 > c->fr_cap) {
            if (c->frontier_kind == 1 && c->fr_head > 0) {
                int64_t live = c->fr_len - c->fr_head;
                memmove(c->fr_lb, c->fr_lb + c->fr_head, (size_t)live * 8);
                memmove(c->fr_seq, c->fr_seq + c->fr_head, (size_t)live * 8);
                memmove(c->fr_slot, c->fr_slot + c->fr_head, (size_t)live * 4);
                memmove(c->fr_level, c->fr_level + c->fr_head, (size_t)live * 4);
                c->fr_head = 0;
                c->fr_len = live;
            }
            if (c->fr_len + worst + 1 > c->fr_cap) {
                c->status = ST_GROW_FRONT;
                return;
            }
        }

        int64_t vslot;
        double vlb;
        int64_t vseq;
        if (c->pend_valid) {
            vslot = c->pend_slot; vlb = c->pend_lb; vseq = c->pend_seq;
            c->pend_valid = 0;
        } else {
            if (!fr_pop(c, &vslot, &vlb, &vseq)) { c->status = ST_DONE; return; }
            if (!c->elim_none && vlb >= c->threshold) {
                if (c->stop_on_bound) {
                    slot_free(c, vslot);
                    c->status = ST_BOUNDSTOP;
                    return;
                }
                c->pruned_active++;
                slot_free(c, vslot);
                continue;
            }
            c->explored++;
            if (!(c->explored & c->check_mask)) {
                c->pend_valid = 1;
                c->pend_slot = vslot; c->pend_lb = vlb; c->pend_seq = vseq;
                c->status = ST_CHECK;
                return;
            }
        }

        int64_t rc = expand_vertex(c, vslot, vlb);
        if (rc >= 0) {
            /* leave the vertex live: Python materializes it to raise */
            c->err_slot = vslot;
            c->status = rc;
            return;
        }

        int tightened = 0;
        if (c->exp_goal_found && c->exp_goal_cost < c->incumbent) {
            tightened = 1;
            c->incumbent = c->exp_goal_cost;
            c->found_cost = c->exp_goal_cost;
            c->incumbent_updates++;
            c->best_found = 1;
            /* materialize the winning schedule from the parent row +
               the goal placement, before the parent row is recycled */
            memcpy(c->best_proc, c->a_proc + vslot * c->n, (size_t)c->n);
            memcpy(c->best_start, c->a_start + vslot * c->n, (size_t)c->n * 8);
            c->best_proc[c->exp_goal_task] = (int8_t)c->exp_goal_proc;
            c->best_start[c->exp_goal_task] = c->exp_goal_s;
            c->threshold = (c->inaccuracy == 0.0 || isinf(c->incumbent))
                ? c->incumbent
                : c->incumbent - c->inaccuracy * fabs(c->incumbent);
            if (!c->elim_none)
                c->pruned_active += fr_prune_above(c, c->threshold);
        }
        slot_free(c, vslot);

        int64_t nk = c->nk;
        if (tightened && !c->elim_none) {
            /* goal tightened the threshold mid-expansion: re-filter the
               surviving children exactly as the engine's DB half does */
            int64_t w = 0;
            for (int64_t i = 0; i < nk; i++) {
                if (c->ch_lb[i] >= c->threshold) {
                    c->pruned_children++;
                    slot_free(c, c->ch_slot[i]);
                } else {
                    c->ch_lb[w] = c->ch_lb[i];
                    c->ch_seq[w] = c->ch_seq[i];
                    c->ch_slot[w] = c->ch_slot[i];
                    w++;
                }
            }
            nk = w;
        }

        if (c->child_order && nk > 1) {
            /* stable insertion sort by bound (strict shifts keep equal
               bounds in generation order, matching Python's sort) */
            for (int64_t i = 1; i < nk; i++) {
                double lb = c->ch_lb[i];
                int64_t sq = c->ch_seq[i];
                int32_t sl = c->ch_slot[i];
                int64_t j = i - 1;
                if (c->child_order == 1) {
                    while (j >= 0 && c->ch_lb[j] < lb) {
                        c->ch_lb[j + 1] = c->ch_lb[j];
                        c->ch_seq[j + 1] = c->ch_seq[j];
                        c->ch_slot[j + 1] = c->ch_slot[j];
                        j--;
                    }
                } else {
                    while (j >= 0 && c->ch_lb[j] > lb) {
                        c->ch_lb[j + 1] = c->ch_lb[j];
                        c->ch_seq[j + 1] = c->ch_seq[j];
                        c->ch_slot[j + 1] = c->ch_slot[j];
                        j--;
                    }
                }
                c->ch_lb[j + 1] = lb;
                c->ch_seq[j + 1] = sq;
                c->ch_slot[j + 1] = sl;
            }
        }

        int64_t clevel = 0;
        if (nk) clevel = c->a_level[c->ch_slot[0]];
        for (int64_t i = 0; i < nk; i++)
            fr_push(c, c->ch_lb[i], c->ch_seq[i], c->ch_slot[i], clevel);

        int64_t active = fr_active(c);
        if (active > c->peak_active) c->peak_active = active;

        if (c->generated >= c->max_vertices) { c->status = ST_MAXVERT; return; }
    }
}
"""


# Python-side mirror of ctx_t.  Layout is trivially sequential: every
# scalar is 8 bytes and pointers come first; `ctx_size()` is checked
# against ctypes.sizeof at load time to catch any drift.
_PTR_FIELDS = [
    "wcet", "arrival", "deadline", "tail_lat", "tail",
    "pred_off", "pred_idx", "pred_size", "succ_off", "succ_idx",
    "topo", "topo_pos", "pred_mask", "srm", "fixed_order",
    "a_sched", "a_ready", "a_level", "a_lat", "a_lmin",
    "a_last_task", "a_last_proc", "a_proc", "a_start", "a_finish",
    "a_avail", "a_est", "a_estart", "free_stack",
    "fr_lb", "fr_seq", "fr_slot", "fr_level",
    "sc_est", "sc_estart", "cand_e", "cand_rank", "floc",
    "procs_buf", "tasks_buf", "ch_lb", "ch_seq", "ch_slot",
    "best_proc", "best_start",
]
_F64_FIELDS = [
    "ud", "eps", "maxd", "inaccuracy", "threshold", "incumbent",
    "found_cost", "fr_threshold", "pend_lb", "exp_goal_cost",
    "exp_goal_s", "exp_goal_f", "parent_lmin", "lmin2",
]
_I64_FIELDS = [
    "n", "m", "fr_cap", "frontier_kind", "bound_kind", "child_order",
    "elim_none", "stop_on_bound", "break_symmetry", "branch_fixed",
    "seq", "generated", "explored", "goals_evaluated", "pruned_children",
    "pruned_active", "incumbent_updates", "peak_active", "max_vertices",
    "fr_len", "fr_head", "fr_live", "nfree", "pend_valid", "pend_slot",
    "pend_seq", "check_mask", "best_found", "status", "err_slot",
    "exp_goal_found", "exp_goal_task", "exp_goal_proc", "nk",
    "have_pend", "cand_built", "cand_n",
]


class _Ctx(ctypes.Structure):
    _fields_ = (
        [(name, ctypes.c_void_p) for name in _PTR_FIELDS]
        + [(name, ctypes.c_double) for name in _F64_FIELDS]
        + [(name, ctypes.c_int64) for name in _I64_FIELDS]
    )


ST_DONE = 0
ST_BOUNDSTOP = 1
ST_CHECK = 2
ST_MAXVERT = 3
ST_GROW_ARENA = 4
ST_GROW_FRONT = 5
ST_ERR_NOT_READY = 6

_LIB = None
_LIB_TRIED = False


def _cache_dir() -> str:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "repro-native")


def load_native():
    """Compile (once, cached by source hash) and load the kernel.

    Returns the loaded CDLL or ``None`` when disabled via
    ``REPRO_NO_NATIVE=1``, no C compiler is available, or the build or
    layout check fails — callers fall back to the numpy path.
    """
    global _LIB, _LIB_TRIED
    if _LIB_TRIED:
        return _LIB
    _LIB_TRIED = True
    if os.environ.get("REPRO_NO_NATIVE"):
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = os.path.join(cache, f"repro_arena_{digest}.so")
    try:
        if not os.path.exists(lib_path):
            os.makedirs(cache, exist_ok=True)
            src_path = os.path.join(cache, f"repro_arena_{digest}.c")
            with open(src_path, "w") as fh:
                fh.write(_C_SOURCE)
            # -ffp-contract=off and no -march: no FMA contraction, so
            # every float expression rounds exactly like CPython's.
            tmp = lib_path + f".tmp{os.getpid()}"
            subprocess.run(
                ["cc", "-O2", "-fPIC", "-shared", "-ffp-contract=off",
                 "-o", tmp, src_path],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, lib_path)
        lib = ctypes.CDLL(lib_path)
        lib.ctx_size.restype = ctypes.c_int64
        lib.ctx_size.argtypes = []
        if lib.ctx_size() != ctypes.sizeof(_Ctx):
            return None
        lib.arena_drive.restype = None
        lib.arena_drive.argtypes = [ctypes.POINTER(_Ctx)]
        _LIB = lib
    except Exception:
        _LIB = None
    return _LIB


def native_available() -> bool:
    return load_native() is not None


def _ptr(arr) -> int:
    return 0 if arr is None else arr.ctypes.data


class NativeDriver:
    """Owns one C-driven search: context, frontier arrays, scratch.

    The engine seeds it with the already-initialized search state
    (frontier export, counters, incumbent/threshold), then loops on
    :meth:`step`, handling the non-``DONE`` statuses exactly as the
    Python loop would at the same program points.
    """

    def __init__(
        self,
        arena,
        ap,
        *,
        frontier_kind: int,
        bound_kind: int,
        child_order: int,
        elim_none: bool,
        stop_on_bound: bool,
        break_symmetry: bool,
        fixed_order=None,
        entries,
        seq: int,
        threshold: float,
        incumbent: float,
        found_cost: float,
        inaccuracy: float,
        max_vertices: float,
        do_checks: bool,
        stats,
    ) -> None:
        self.arena = arena
        self.ap = ap
        self.lib = load_native()
        if self.lib is None:
            raise RuntimeError("native kernel unavailable")
        n, m = ap.n, ap.m
        nm = n * m
        self._fixed = (
            np.asarray(fixed_order, dtype=np.int64)
            if fixed_order is not None
            else None
        )
        # Scratch (driver-owned)
        self._sc_est = np.zeros(n, dtype=np.float64)
        self._sc_estart = np.zeros(n, dtype=np.float64)
        self._cand_e = np.zeros(n, dtype=np.float64)
        self._cand_rank = np.zeros(n, dtype=np.int64)
        self._floc = np.zeros(m, dtype=np.float64)
        self._procs_buf = np.zeros(m, dtype=np.int64)
        self._tasks_buf = np.zeros(max(n, 1), dtype=np.int64)
        self._ch_lb = np.zeros(nm, dtype=np.float64)
        self._ch_seq = np.zeros(nm, dtype=np.int64)
        self._ch_slot = np.zeros(nm, dtype=np.int32)
        self._best_proc = np.zeros(n, dtype=np.int8)
        self._best_start = np.zeros(n, dtype=np.float64)
        # Frontier arrays
        fr_cap = max(4096, 4 * (nm + 2), len(entries) + nm + 2)
        self._fr_lb = np.zeros(fr_cap, dtype=np.float64)
        self._fr_seq = np.zeros(fr_cap, dtype=np.int64)
        self._fr_slot = np.zeros(fr_cap, dtype=np.int32)
        self._fr_level = np.zeros(fr_cap, dtype=np.int32)
        self._fr_cap = fr_cap

        ctx = self.ctx = _Ctx()
        ctx.n = n
        ctx.m = m
        ctx.frontier_kind = frontier_kind
        ctx.bound_kind = bound_kind
        ctx.child_order = child_order
        ctx.elim_none = int(elim_none)
        ctx.stop_on_bound = int(stop_on_bound)
        ctx.break_symmetry = int(break_symmetry)
        ctx.branch_fixed = int(self._fixed is not None)
        ctx.ud = float(ap.uniform) if ap.uniform is not None else 0.0
        ctx.eps = ap.eps
        ctx.maxd = ap.maxabs_deadline
        ctx.inaccuracy = inaccuracy
        ctx.threshold = threshold
        ctx.incumbent = incumbent
        ctx.found_cost = found_cost
        # A fresh Python frontier's internal prune threshold is +inf
        # until the first active-set sweep stamps it.
        ctx.fr_threshold = math.inf
        ctx.seq = seq
        ctx.generated = stats.generated
        ctx.explored = stats.explored
        ctx.goals_evaluated = stats.goals_evaluated
        ctx.pruned_children = stats.pruned_children
        ctx.pruned_active = stats.pruned_active
        ctx.incumbent_updates = stats.incumbent_updates
        ctx.peak_active = stats.peak_active
        ctx.max_vertices = (
            (1 << 62) if math.isinf(max_vertices) else int(max_vertices)
        )
        ctx.check_mask = 0xFF if do_checks else 0x3FFF
        ctx.pend_valid = 0
        ctx.best_found = 0

        # Seed the frontier.  `entries` is the Python frontier's export
        # (pop order): a LIFO stack popping from the tail stores it
        # reversed; FIFO stores it as-is; for the LLB heaps a key-sorted
        # array is already a valid binary min-heap, and any valid heap
        # yields the same pop order because keys are unique.
        if frontier_kind == 0:
            entries = list(reversed(entries))
        for i, (lb, sq, slot, level) in enumerate(entries):
            self._fr_lb[i] = lb
            self._fr_seq[i] = sq
            self._fr_slot[i] = slot
            self._fr_level[i] = level
        ctx.fr_len = len(entries)
        ctx.fr_head = 0
        ctx.fr_live = len(entries)
        self._bind()

    # ------------------------------------------------------------------

    def _bind(self) -> None:
        """(Re)point the context at the current numpy buffers."""
        ap, arena, ctx = self.ap, self.arena, self.ctx
        ctx.wcet = _ptr(ap.wcet)
        ctx.arrival = _ptr(ap.arrival)
        ctx.deadline = _ptr(ap.deadline)
        ctx.tail_lat = _ptr(ap.tail_lateness)
        ctx.tail = _ptr(ap.tail)
        ctx.pred_off = _ptr(ap.pred_off)
        ctx.pred_idx = _ptr(ap.pred_idx)
        ctx.pred_size = _ptr(ap.pred_size)
        ctx.succ_off = _ptr(ap.succ_off)
        ctx.succ_idx = _ptr(ap.succ_idx)
        ctx.topo = _ptr(ap.topo)
        ctx.topo_pos = _ptr(ap.topo_pos)
        ctx.pred_mask = _ptr(ap.pred_mask)
        ctx.srm = _ptr(ap.succ_rank_mask)
        ctx.fixed_order = _ptr(self._fixed)
        ctx.a_sched = _ptr(arena.sched)
        ctx.a_ready = _ptr(arena.ready)
        ctx.a_level = _ptr(arena.level)
        ctx.a_lat = _ptr(arena.lateness)
        ctx.a_lmin = _ptr(arena.lmin)
        ctx.a_last_task = _ptr(arena.last_task)
        ctx.a_last_proc = _ptr(arena.last_proc)
        ctx.a_proc = _ptr(arena.proc_of)
        ctx.a_start = _ptr(arena.start)
        ctx.a_finish = _ptr(arena.finish)
        ctx.a_avail = _ptr(arena.avail)
        ctx.a_est = _ptr(arena.est)
        ctx.a_estart = _ptr(arena.estart)
        ctx.free_stack = _ptr(arena.free_stack)
        ctx.nfree = arena.nfree
        ctx.fr_lb = _ptr(self._fr_lb)
        ctx.fr_seq = _ptr(self._fr_seq)
        ctx.fr_slot = _ptr(self._fr_slot)
        ctx.fr_level = _ptr(self._fr_level)
        ctx.fr_cap = self._fr_cap
        ctx.sc_est = _ptr(self._sc_est)
        ctx.sc_estart = _ptr(self._sc_estart)
        ctx.cand_e = _ptr(self._cand_e)
        ctx.cand_rank = _ptr(self._cand_rank)
        ctx.floc = _ptr(self._floc)
        ctx.procs_buf = _ptr(self._procs_buf)
        ctx.tasks_buf = _ptr(self._tasks_buf)
        ctx.ch_lb = _ptr(self._ch_lb)
        ctx.ch_seq = _ptr(self._ch_seq)
        ctx.ch_slot = _ptr(self._ch_slot)
        ctx.best_proc = _ptr(self._best_proc)
        ctx.best_start = _ptr(self._best_start)

    def step(self) -> int:
        self.lib.arena_drive(ctypes.byref(self.ctx))
        self.arena.nfree = int(self.ctx.nfree)
        return int(self.ctx.status)

    def grow(self, status: int) -> None:
        if status == ST_GROW_ARENA:
            self.arena.grow()
        else:
            cap = self._fr_cap * 2
            for name in ("_fr_lb", "_fr_seq", "_fr_slot", "_fr_level"):
                old = getattr(self, name)
                fresh = np.zeros(cap, dtype=old.dtype)
                fresh[: old.shape[0]] = old
                setattr(self, name, fresh)
            self._fr_cap = cap
        self._bind()

    # ------------------------------------------------------------------

    def sync_stats(self, stats) -> None:
        ctx = self.ctx
        stats.generated = int(ctx.generated)
        stats.explored = int(ctx.explored)
        stats.goals_evaluated = int(ctx.goals_evaluated)
        stats.pruned_children = int(ctx.pruned_children)
        stats.pruned_active = int(ctx.pruned_active)
        stats.incumbent_updates = int(ctx.incumbent_updates)
        stats.peak_active = int(ctx.peak_active)

    @property
    def seq(self) -> int:
        return int(self.ctx.seq)

    @property
    def threshold(self) -> float:
        return float(self.ctx.threshold)

    @property
    def incumbent(self) -> float:
        return float(self.ctx.incumbent)

    @property
    def best_found(self) -> bool:
        return bool(self.ctx.best_found)

    @property
    def found_cost(self) -> float:
        return float(self.ctx.found_cost)

    def best_schedule(self) -> tuple[tuple[int, ...], tuple[float, ...]]:
        return (
            tuple(int(p) for p in self._best_proc),
            tuple(self._best_start.tolist()),
        )

    def take_pending(self):
        """Claim the parked in-hand vertex as ``(slot, lb, seq)``."""
        ctx = self.ctx
        if not ctx.pend_valid:
            return None
        ctx.pend_valid = 0
        return int(ctx.pend_slot), float(ctx.pend_lb), int(ctx.pend_seq)

    def err_slot(self) -> int:
        return int(self.ctx.err_slot)

    def open_min_bound(self):
        """Minimum bound over the open frontier (stale entries excluded)."""
        ctx = self.ctx
        if ctx.frontier_kind < 2:
            lo, hi = int(ctx.fr_head), int(ctx.fr_len)
            if hi <= lo:
                return None
            return float(self._fr_lb[lo:hi].min())
        lbs = self._fr_lb[: int(ctx.fr_len)]
        live = lbs[lbs < ctx.fr_threshold]
        if live.size == 0:
            return None
        return float(live.min())

    def active_len(self) -> int:
        ctx = self.ctx
        if ctx.frontier_kind < 2:
            return int(ctx.fr_len - ctx.fr_head)
        return int(ctx.fr_live)
