"""Initial upper-bound solution costs ``U`` (Sections 3.4 and 4.4).

The root vertex's cost is initialized from an upper-bound provider.
Kohler & Steiglitz prove one cannot lose by starting from a better
initial solution, and the paper reports a >200% speedup from seeding
with the greedy EDF solution instead of a naive positive constant
(Section 6) — both providers are implemented here, plus a multi-heuristic
portfolio.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..model.compile import CompiledProblem
from ..scheduling.edf import edf_schedule
from ..scheduling.heuristics import best_heuristic_schedule
from ..scheduling.listsched import HeuristicResult

__all__ = [
    "UpperBoundProvider",
    "EDFUpperBound",
    "BestHeuristicUpperBound",
    "ConstantUpperBound",
    "NoUpperBound",
    "UPPER_BOUNDS",
]


class UpperBoundProvider(ABC):
    """Produces the initial incumbent cost (and, if available, solution)."""

    name: str = "?"

    @abstractmethod
    def initial(
        self, problem: CompiledProblem
    ) -> tuple[float, HeuristicResult | None]:
        """Return ``(cost, solution)``; solution is None for pure costs."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class EDFUpperBound(UpperBoundProvider):
    """Greedy EDF schedule (the paper's default ``U``)."""

    name = "EDF"

    def initial(
        self, problem: CompiledProblem
    ) -> tuple[float, HeuristicResult | None]:
        result = edf_schedule(problem)
        return result.max_lateness, result


class BestHeuristicUpperBound(UpperBoundProvider):
    """Portfolio of all registered heuristics; keeps the best schedule."""

    name = "best-heuristic"

    def initial(
        self, problem: CompiledProblem
    ) -> tuple[float, HeuristicResult | None]:
        result = best_heuristic_schedule(problem)
        return result.max_lateness, result


class ConstantUpperBound(UpperBoundProvider):
    """A fixed cost with no accompanying schedule.

    The Section 6 upper-bound ablation compares EDF seeding against "an
    approach where the initial upper-bound cost was set to a positive
    value"; this provider models that naive approach.  Note the B&B can
    only *fail* (return no schedule) if the constant is below the true
    optimum.
    """

    name = "constant"

    def __init__(self, value: float) -> None:
        if math.isnan(value):
            raise ConfigurationError("constant upper bound must not be NaN")
        self.value = value

    def initial(
        self, problem: CompiledProblem
    ) -> tuple[float, HeuristicResult | None]:
        return self.value, None

    def __repr__(self) -> str:
        return f"ConstantUpperBound({self.value!r})"


class NoUpperBound(ConstantUpperBound):
    """No initial bound (+inf): pruning starts only after the first goal."""

    name = "none"

    def __init__(self) -> None:
        super().__init__(float("inf"))

    def __repr__(self) -> str:
        return "NoUpperBound()"


UPPER_BOUNDS: dict[str, type[UpperBoundProvider]] = {
    EDFUpperBound.name: EDFUpperBound,
    BestHeuristicUpperBound.name: BestHeuristicUpperBound,
    NoUpperBound.name: NoUpperBound,
}
