"""Search-tree vertices.

A :class:`Vertex` pairs a :class:`~repro.core.state.SearchState` with its
lower-bound cost ``L(v)`` and a monotone sequence number recording
generation order (used by the FIFO/LIFO selection rules and as a
deterministic heap tie-break for LLB).
"""

from __future__ import annotations

from .state import SearchState

__all__ = ["Vertex"]


class Vertex(object):
    """One vertex of the branch-and-bound search tree.

    ``est``/``estart`` carry the incremental lower bound's estimate
    vectors (finish and pre-``wcet`` start estimates per task) from
    parent to child on the fused expansion path; they stay ``None``
    on the reference path and for bounds without an incremental form.
    """

    __slots__ = ("state", "lower_bound", "seq", "est", "estart")

    def __init__(
        self,
        state: SearchState,
        lower_bound: float,
        seq: int,
        est: list[float] | None = None,
        estart: list[float] | None = None,
    ) -> None:
        self.state = state
        self.lower_bound = lower_bound
        self.seq = seq
        self.est = est
        self.estart = estart

    @property
    def level(self) -> int:
        """Number of tasks placed in the vertex's partial schedule."""
        return self.state.level

    @property
    def is_goal(self) -> bool:
        return self.state.is_goal

    def __lt__(self, other: "Vertex") -> bool:
        # Heap order for the LLB rule: least lower bound first; the
        # sequence number makes the order total and deterministic.
        if self.lower_bound != other.lower_bound:
            return self.lower_bound < other.lower_bound
        return self.seq < other.seq

    def __repr__(self) -> str:
        return (
            f"Vertex(seq={self.seq}, level={self.level}, "
            f"lb={self.lower_bound:g})"
        )
