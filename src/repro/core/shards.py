"""Shard bookkeeping shared by the parallel and cluster drivers.

Both the single-machine throughput supervisor
(:mod:`repro.core.parallel`) and the networked coordinator
(:mod:`repro.cluster`) decompose a solve the same way: a shallow
sequential pass collects the depth-d frontier as :class:`Shard` roots,
and a dispatch loop hands shards to workers, re-queues the ones whose
worker died, and quarantines shards that keep killing workers.  This
module holds that machinery once:

* :class:`Shard` — one frontier root, frozen with the incumbent and
  budget it entered with.
* :class:`FrontierCollector` — the engine dispatcher that records the
  depth-d frontier instead of searching it.
* :class:`BackoffPolicy` — capped exponential retry backoff with
  *decorrelated jitter*.  Shards orphaned by one dead worker must not
  retry in lockstep (they would all land on the replacement worker in
  the same instant, and a poison shard would re-kill it on a fixed
  cadence); jitter decorrelates them while the exponential envelope
  still bounds every delay.
* :class:`RetryQueue` — the pending-shard queue: eligibility-delayed
  retries, bounded attempts, and the quarantine list that forces a
  TRUNCATED (never falsely OPTIMAL) result.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .engine import BnBResult, SolveStatus, SubtreeDispatcher
from .expand import PendingChild
from .stats import SearchStats

__all__ = [
    "BackoffPolicy",
    "FrontierCollector",
    "RetryQueue",
    "Shard",
    "shard_state",
]


def shard_state(vertex):
    """Materialize a frontier vertex's state for shipping."""
    state = vertex.state
    if type(state) is PendingChild:
        state = state.materialize()
        vertex.state = state
    return state


@dataclass(frozen=True)
class Shard:
    """One depth-d frontier root, ready to ship to a worker."""

    index: int
    state: object  # SearchState; untyped to avoid a hot-path import
    lower_bound: float
    #: Incumbent at collect time (dispatchers may substitute a fresher one).
    incumbent_cost: float
    #: Remaining generated-vertex budget at collect time.
    budget: float


class FrontierCollector(SubtreeDispatcher):
    """Dispatcher that records the depth-d frontier instead of searching.

    Resolving every dispatched vertex with an empty result makes the
    coordinator's loop a pure shallow expansion: it terminates once all
    vertices below ``depth`` are expanded, leaving the would-be shard
    roots here in exact pop order with their entering incumbents and
    budgets.
    """

    def __init__(self, depth: int, problem, params) -> None:
        self.depth = depth
        self._problem = problem
        self._params = params
        self.shards: list[Shard] = []

    def resolve(self, vertex, incumbent_cost: float, budget: float) -> BnBResult:
        self.shards.append(
            Shard(
                len(self.shards),
                shard_state(vertex),
                vertex.lower_bound,
                incumbent_cost,
                budget,
            )
        )
        return BnBResult(
            problem=self._problem,
            params=self._params,
            status=SolveStatus.FAILED,
            best_cost=math.inf,
            proc_of=None,
            start=None,
            incumbent_source="initial-upper-bound",
            initial_upper_bound=incumbent_cost,
            stats=SearchStats(),
        )


@dataclass
class BackoffPolicy:
    """Capped exponential backoff with decorrelated jitter.

    The deterministic envelope for the retry after failure ``attempt``
    (1-based) is ``min(cap, base * 2**(attempt-1))`` — the classic
    capped exponential.  With an RNG attached the actual delay is drawn
    uniformly from ``[base, min(envelope, 3 * previous_delay)]``
    (previous defaulting to ``base``), the *decorrelated jitter* scheme:
    consecutive retries of the same shard spread apart, and shards
    orphaned together never share a retry instant.  Every draw is
    bounded by ``base <= delay <= min(cap, base * 2**(attempt-1))``,
    which the unit tests pin with a seeded RNG.

    ``rng=None`` disables jitter (pure exponential) — used by callers
    that need exact, reproducible delays.
    """

    base: float = 0.05
    cap: float = 30.0
    rng: random.Random | None = None

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigurationError(f"backoff base must be >= 0, got {self.base}")
        if self.cap < self.base:
            raise ConfigurationError(
                f"backoff cap must be >= base ({self.base}), got {self.cap}"
            )

    def envelope(self, attempt: int) -> float:
        """The deterministic upper bound for this attempt's delay."""
        return min(self.cap, self.base * (2.0 ** max(0, attempt - 1)))

    def next_delay(self, attempt: int, previous: float | None = None) -> float:
        """Delay before retry number ``attempt`` (1-based, the retry
        that follows the ``attempt``-th failure)."""
        ceiling = self.envelope(attempt)
        if self.rng is None or self.base == 0:
            return ceiling
        prev = previous if previous is not None else self.base
        hi = min(ceiling, max(self.base, 3.0 * prev))
        return self.rng.uniform(self.base, hi)


@dataclass
class _PendingEntry:
    shard: Shard
    attempt: int
    eligible_at: float
    prev_delay: float | None = None


@dataclass
class RetryQueue:
    """Pending shards with backoff-delayed retries and quarantine.

    Retries never block healthy dispatch: a shard backing off simply is
    not *eligible* until its delay elapses, and callers poll with
    :meth:`pop_eligible`.  After ``max_attempts`` failures a shard is
    quarantined — the run completes without it and must report itself
    TRUNCATED, never OPTIMAL.
    """

    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    _pending: deque = field(default_factory=deque)
    quarantined: list[int] = field(default_factory=list)
    retries: int = 0

    def add(self, shard: Shard, attempt: int = 1, eligible_at: float = 0.0) -> None:
        self._pending.append(_PendingEntry(shard, attempt, eligible_at))

    def pop_eligible(self, now: float) -> tuple[Shard, int] | None:
        """The next shard whose backoff has elapsed, or None."""
        for _ in range(len(self._pending)):
            entry = self._pending.popleft()
            if entry.eligible_at <= now:
                return entry.shard, entry.attempt
            self._pending.append(entry)
        return None

    def requeue(self, shard: Shard, attempt: int, now: float) -> float | None:
        """A worker failed on ``attempt``; back off or quarantine.

        Returns the retry delay, or None when the shard was quarantined
        (attempt budget exhausted).
        """
        if attempt >= self.max_attempts:
            self.quarantined.append(shard.index)
            return None
        prev = self._prev_delay.get(shard.index)
        delay = self.backoff.next_delay(attempt, prev)
        self._prev_delay[shard.index] = delay
        self._pending.append(
            _PendingEntry(shard, attempt + 1, now + delay, delay)
        )
        self.retries += 1
        return delay

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        self._prev_delay: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def __iter__(self):
        """Pending entries (shard, attempt, eligible_at), queue order."""
        for entry in self._pending:
            yield entry.shard, entry.attempt, entry.eligible_at

    def min_lower_bound(self) -> float | None:
        """Smallest bound over pending shards (open-gap accounting)."""
        lb = None
        for entry in self._pending:
            if lb is None or entry.shard.lower_bound < lb:
                lb = entry.shard.lower_bound
        return lb
