"""Struct-of-arrays search arena backing the ``--engine array`` core.

Instead of one :class:`~repro.core.state.SearchState` object per vertex
(14 slots, 4 tuples, ~0.5 us of allocator work each), the arena stores
every live vertex as a *row index* into preallocated numpy columns:

* bit-packed ``scheduled``/``ready`` masks (``uint64`` — the model caps
  ``n`` at 62, so one word suffices);
* per-task ``proc_of``/``start``/``finish`` rows and the per-processor
  ``avail`` (finish-time) vector;
* scalar columns for level, running max-lateness, cached ``min(avail)``
  and the last placement;
* optional ``est``/``estart`` rows carrying the incremental LB0/LB1
  evaluator state (omitted for the trivial bound).

Rows are recycled through an explicit free stack, and every column can
be handed to the native kernel as a raw pointer, so neither the numpy
batch expander nor the C chunk driver allocates Python objects on the
hot path.  :class:`ArenaState` is a thin row handle that mirrors the
``SearchState`` surface the rest of the engine touches and materializes
a real ``SearchState`` lazily (pickling, checkpoints, error paths, and
transposition signatures all go through materialization, so the arena
never needs to replicate Zobrist accumulators).

Integer cost-scaling contract
-----------------------------

:func:`analyze_cost_domain` certifies when the float cost domain of a
problem is *exact*.  Every finite double is a dyadic rational; let ``s``
be the largest denominator exponent over all cost atoms (WCETs,
arrivals, deadlines, tails, tail latenesses, and the *rounded float*
communication products ``size * delay``), and ``A`` the largest atom
magnitude.  Any start/finish/bound/press value the search computes is a
signed sum of at most ``2n + 4`` such atoms, so when

    ``A * (2n + 4) * 2**s < 2**53``

every partial sum is an integer multiple of ``2**-s`` below the 53-bit
mantissa limit, every float addition/subtraction in the search is exact
(IEEE-754 round-to-nearest of a representable value), and comparisons
against the pruning threshold behave as if carried out in integers.  In
that regime the fused expander's defensive rounding margin on the tail
admission pre-check is provably redundant (the computed child bound
equals the true bound and dominates the computed press), so the numpy
batch kernel drops the margin without perturbing a single counter.
When the certificate fails — irrational-looking durations, huge scales
(``s > 512``), non-finite atoms, or magnitudes overflowing the mantissa
— the domain is flagged inexact and every consumer keeps the fused
margin semantics bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import isfinite

import numpy as np

from .state import SearchState

__all__ = [
    "CostDomain",
    "analyze_cost_domain",
    "ArenaProblem",
    "StateArena",
    "ArenaState",
]


# ----------------------------------------------------------------------
# Cost domain analysis
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CostDomain:
    """Certificate for the integer scaling of a problem's cost values."""

    #: Whether every float the search computes is provably exact.
    exact: bool
    #: Smallest ``s`` with every atom an integer multiple of ``2**-s``.
    scale_bits: int
    #: Largest atom magnitude.
    max_abs: float
    #: Sum-length bound used by the certificate (``2n + 4``).
    terms: int

    def as_integer(self, value: float) -> int:
        """Map ``value`` to the integer-scaled domain (``value * 2**s``).

        Only meaningful for :attr:`exact` domains; raises ``ValueError``
        when the value is not an exact multiple of ``2**-scale_bits``.
        """
        if not isfinite(value):
            raise ValueError(f"cannot scale non-finite value {value!r}")
        scaled = Fraction(value) * (1 << self.scale_bits)
        if scaled.denominator != 1:
            raise ValueError(
                f"{value!r} is not an integer multiple of 2**-{self.scale_bits}"
            )
        return scaled.numerator

    def from_integer(self, scaled: int) -> float:
        """Inverse of :meth:`as_integer` (exact while ``|scaled| < 2**53``)."""
        return scaled / float(1 << self.scale_bits)


def _atoms_of(problem) -> list[float]:
    atoms: list[float] = []
    atoms += list(problem.wcet)
    atoms += list(problem.arrival)
    atoms += list(problem.deadline)
    atoms += list(problem.tail)
    atoms += list(problem.tail_lateness)
    ud = problem.uniform_delay
    if ud is not None:
        for edges in problem.pred_edges:
            for _, size in edges:
                # The *rounded float product* is what the search adds.
                atoms.append(size * ud)
    else:
        for edges in problem.pred_edges:
            for _, size in edges:
                for row in problem.delay:
                    for d in row:
                        atoms.append(size * d)
    return atoms


def analyze_cost_domain(problem) -> CostDomain:
    """Certify exactness of the float cost domain (see module docstring)."""
    atoms = _atoms_of(problem)
    terms = 2 * problem.n + 4
    scale = 0
    max_abs = 0.0
    exact = True
    for v in atoms:
        if not isfinite(v):
            exact = False
            continue
        a = abs(v)
        if a > max_abs:
            max_abs = a
        if v != 0.0:
            den = Fraction(v).denominator
            bits = den.bit_length() - 1
            if bits > scale:
                scale = bits
    if scale > 512:
        exact = False
    if exact and Fraction(max_abs) * terms * (1 << scale) >= (1 << 53):
        exact = False
    return CostDomain(exact=exact, scale_bits=scale, max_abs=max_abs, terms=terms)


# ----------------------------------------------------------------------
# Problem mirror (numpy views of CompiledProblem)
# ----------------------------------------------------------------------


class ArenaProblem:
    """Numpy mirrors of the :class:`CompiledProblem` static tables.

    Predecessor/successor adjacency is stored CSR-style so batch kernels
    can gather all edges of all branch tasks in one fancy-indexing pass,
    and the native kernel can walk them with two integer loads per edge.
    """

    __slots__ = (
        "problem",
        "n",
        "m",
        "wcet",
        "arrival",
        "deadline",
        "tail",
        "tail_lateness",
        "pred_off",
        "pred_idx",
        "pred_size",
        "succ_off",
        "succ_idx",
        "topo",
        "topo_pos",
        "succ_rank_mask",
        "pred_mask",
        "delay",
        "uniform",
        "eps",
        "maxabs_deadline",
        "domain",
    )

    def __init__(self, problem) -> None:
        n, m = problem.n, problem.m
        self.problem = problem
        self.n = n
        self.m = m
        self.wcet = np.asarray(problem.wcet, dtype=np.float64)
        self.arrival = np.asarray(problem.arrival, dtype=np.float64)
        self.deadline = np.asarray(problem.deadline, dtype=np.float64)
        self.tail = np.asarray(problem.tail, dtype=np.float64)
        self.tail_lateness = np.asarray(problem.tail_lateness, dtype=np.float64)

        pred_off = np.zeros(n + 1, dtype=np.int64)
        pidx: list[int] = []
        psize: list[float] = []
        for i in range(n):
            for j, size in problem.pred_edges[i]:
                pidx.append(j)
                psize.append(size)
            pred_off[i + 1] = len(pidx)
        self.pred_off = pred_off
        self.pred_idx = np.asarray(pidx, dtype=np.int64)
        self.pred_size = np.asarray(psize, dtype=np.float64)

        succ_off = np.zeros(n + 1, dtype=np.int64)
        sidx: list[int] = []
        for i in range(n):
            for j, _size in problem.succ_edges[i]:
                sidx.append(j)
            succ_off[i + 1] = len(sidx)
        self.succ_off = succ_off
        self.succ_idx = np.asarray(sidx, dtype=np.int64)

        self.topo = np.asarray(problem.topo, dtype=np.int64)
        self.topo_pos = np.asarray(problem.topo_pos, dtype=np.int64)
        self.succ_rank_mask = np.asarray(problem.succ_rank_mask, dtype=np.uint64)
        self.pred_mask = np.asarray(problem.pred_mask, dtype=np.uint64)
        self.delay = np.asarray(problem.delay, dtype=np.float64)
        self.uniform = problem.uniform_delay
        # Same defensive margin constants as FusedExpander.
        self.eps = 4.0 * (n + 2) * 2.0**-52
        self.maxabs_deadline = max(abs(d) for d in problem.deadline)
        self.domain = analyze_cost_domain(problem)


# ----------------------------------------------------------------------
# The arena
# ----------------------------------------------------------------------


def _restore_state(state: SearchState) -> SearchState:
    """Pickle trampoline: arena rows serialize as plain SearchStates."""
    return state


class StateArena:
    """Preallocated struct-of-arrays vertex storage with a free stack.

    Rows are allocated from the top of ``free_stack`` and returned there
    on release; capacity doubles on demand (``grow``), which invalidates
    raw pointers — the native driver re-reads all column pointers after
    any grow.  ``version`` increments on every grow so cached pointer
    bundles can detect staleness.
    """

    __slots__ = (
        "ap",
        "problem",
        "cap",
        "track_est",
        "sched",
        "ready",
        "level",
        "lateness",
        "lmin",
        "last_task",
        "last_proc",
        "proc_of",
        "start",
        "finish",
        "avail",
        "est",
        "estart",
        "free_stack",
        "nfree",
        "version",
    )

    def __init__(self, ap: ArenaProblem, *, track_est: bool, capacity: int = 4096) -> None:
        self.ap = ap
        self.problem = ap.problem
        self.track_est = track_est
        self.cap = 0
        self.nfree = 0
        self.version = 0
        self._allocate(max(capacity, 4 * (ap.n * ap.m + 2)))

    def _allocate(self, cap: int) -> None:
        n, m = self.ap.n, self.ap.m
        old = self.cap
        self.sched = self._grown(getattr(self, "sched", None), (cap,), np.uint64)
        self.ready = self._grown(getattr(self, "ready", None), (cap,), np.uint64)
        self.level = self._grown(getattr(self, "level", None), (cap,), np.int32)
        self.lateness = self._grown(getattr(self, "lateness", None), (cap,), np.float64)
        self.lmin = self._grown(getattr(self, "lmin", None), (cap,), np.float64)
        self.last_task = self._grown(getattr(self, "last_task", None), (cap,), np.int16)
        self.last_proc = self._grown(getattr(self, "last_proc", None), (cap,), np.int16)
        self.proc_of = self._grown(getattr(self, "proc_of", None), (cap, n), np.int8)
        self.start = self._grown(getattr(self, "start", None), (cap, n), np.float64)
        self.finish = self._grown(getattr(self, "finish", None), (cap, n), np.float64)
        self.avail = self._grown(getattr(self, "avail", None), (cap, m), np.float64)
        if self.track_est:
            self.est = self._grown(getattr(self, "est", None), (cap, n), np.float64)
            self.estart = self._grown(getattr(self, "estart", None), (cap, n), np.float64)
        else:
            self.est = None
            self.estart = None
        stack = np.empty(cap, dtype=np.int32)
        if old:
            stack[: self.nfree] = self.free_stack[: self.nfree]
        fresh = np.arange(old, cap, dtype=np.int32)
        stack[self.nfree : self.nfree + fresh.size] = fresh
        self.free_stack = stack
        self.nfree += fresh.size
        self.cap = cap
        self.version += 1

    @staticmethod
    def _grown(old, shape, dtype):
        arr = np.zeros(shape, dtype=dtype)
        if old is not None:
            arr[: old.shape[0]] = old
        return arr

    def grow(self) -> None:
        self._allocate(self.cap * 2)

    # -- allocation ----------------------------------------------------

    def alloc(self) -> int:
        if self.nfree == 0:
            self.grow()
        self.nfree -= 1
        return int(self.free_stack[self.nfree])

    def alloc_many(self, k: int) -> np.ndarray:
        while self.nfree < k:
            self.grow()
        self.nfree -= k
        return self.free_stack[self.nfree : self.nfree + k].copy()

    def free(self, slot: int) -> None:
        self.free_stack[self.nfree] = slot
        self.nfree += 1

    @property
    def live(self) -> int:
        return self.cap - self.nfree

    # -- SearchState bridge --------------------------------------------

    def adopt(self, state: SearchState, est=None, estart=None) -> int:
        """Copy a SearchState into a fresh row (root / foreign seeds)."""
        slot = self.alloc()
        n = self.ap.n
        self.sched[slot] = state.scheduled_mask
        self.ready[slot] = state.ready_mask
        self.level[slot] = state.level
        self.lateness[slot] = state.scheduled_lateness
        self.lmin[slot] = state.min_avail()
        self.last_task[slot] = state.last_task
        self.last_proc[slot] = state.last_proc
        self.proc_of[slot, :] = state.proc_of
        self.start[slot, :] = state.start
        self.finish[slot, :] = state.finish
        self.avail[slot, :] = state.avail
        if self.track_est:
            if est is None or len(est) != n:
                raise ValueError("est/estart vectors required for bound-tracking arena")
            self.est[slot, :] = est
            self.estart[slot, :] = estart
        return slot

    def materialize(self, slot: int) -> SearchState:
        """Rebuild a full SearchState from a row (signatures rebuilt lazily)."""
        return SearchState(
            self.problem,
            int(self.sched[slot]),
            int(self.ready[slot]),
            tuple(int(p) for p in self.proc_of[slot]),
            tuple(self.start[slot].tolist()),
            tuple(self.finish[slot].tolist()),
            tuple(self.avail[slot].tolist()),
            int(self.level[slot]),
            float(self.lateness[slot]),
            last_task=int(self.last_task[slot]),
            last_proc=int(self.last_proc[slot]),
            lmin=float(self.lmin[slot]),
        )


class ArenaState:
    """Row handle mirroring the ``SearchState`` surface the engine uses.

    Cheap scalar/mask reads come straight from the columns; anything
    structural (tuples, signatures, child placement on the object path)
    materializes a real ``SearchState`` once and caches it.  ``_owned``
    rows are returned to the free stack on garbage collection; the
    native driver *disowns* handles whose rows it manages itself.
    """

    __slots__ = ("arena", "slot", "_mat", "_owned")

    def __init__(self, arena: StateArena, slot: int, *, owned: bool = True) -> None:
        self.arena = arena
        self.slot = slot
        self._mat = None
        self._owned = owned

    # -- lifecycle -----------------------------------------------------

    def disown(self) -> None:
        """Hand row ownership to the native driver (materialize first —
        the row may be recycled at any point afterwards)."""
        if self._owned:
            self._mat = self.arena.materialize(self.slot)
            self._owned = False

    def __del__(self):  # pragma: no cover - GC timing dependent
        if getattr(self, "_owned", False):
            try:
                self.arena.free(self.slot)
            except Exception:
                pass

    def materialize(self) -> SearchState:
        mat = self._mat
        if mat is None:
            mat = self._mat = self.arena.materialize(self.slot)
        return mat

    def __reduce__(self):
        return (_restore_state, (self.materialize(),))

    # -- cheap column reads --------------------------------------------

    @property
    def problem(self):
        return self.arena.problem

    @property
    def scheduled_mask(self) -> int:
        return int(self.arena.sched[self.slot])

    @property
    def ready_mask(self) -> int:
        return int(self.arena.ready[self.slot])

    @property
    def level(self) -> int:
        return int(self.arena.level[self.slot])

    @property
    def scheduled_lateness(self) -> float:
        return float(self.arena.lateness[self.slot])

    @property
    def last_task(self) -> int:
        return int(self.arena.last_task[self.slot])

    @property
    def last_proc(self) -> int:
        return int(self.arena.last_proc[self.slot])

    @property
    def is_goal(self) -> bool:
        return int(self.arena.sched[self.slot]) == self.arena.problem.all_mask

    def is_ready(self, task: int) -> bool:
        return bool((int(self.arena.ready[self.slot]) >> task) & 1)

    def ready_tasks(self):
        mask = int(self.arena.ready[self.slot])
        out = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def min_avail(self) -> float:
        return float(self.arena.lmin[self.slot])

    @property
    def avail(self):
        return tuple(self.arena.avail[self.slot].tolist())

    # -- structural reads delegate to the materialized state -----------

    @property
    def proc_of(self):
        return self.materialize().proc_of

    @property
    def start(self):
        return self.materialize().start

    @property
    def finish(self):
        return self.materialize().finish

    def signature(self) -> int:
        return self.materialize().signature()

    def child(self, task: int, proc: int) -> SearchState:
        return self.materialize().child(task, proc)

    def child_placed(self, task: int, proc: int, start: float, finish: float):
        return self.materialize().child_placed(task, proc, start, finish)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArenaState(slot={self.slot}, level={self.level})"
