"""Fused branch + bound + admission expansion (the engine's hot path).

The reference loop in :mod:`repro.core.engine` performs, per child:
build a frozen :class:`~repro.core.state.SearchState` (five tuple
copies), then run the lower bound's full ``O(n + E)`` recursion over
it.  For the paper's configurations almost all of that work is wasted —
most children are pruned immediately, and the surviving ones differ
from their parent by a single placement.

:class:`FusedExpander` collapses branching, state construction and
bounding into one pass with three ideas:

1. **Incremental bounds** — LB0/LB1 child bounds are computed from the
   parent's estimate vectors via
   :meth:`~repro.core.bounds.LowerBound.make_incremental`, touching only
   the placed task's descendant cone (plus, for LB1, tasks pinned by an
   advanced ``l_min``).  The evaluators replicate the reference float
   operations, so bounds — and therefore vertex counts — are identical.
2. **Tail admission pre-check** — before bounding, a child is discarded
   when a cheap under-estimate of its bound already meets the
   elimination threshold: ``max(parent_lb, f - D_task)`` (exact for
   monotone bounds) and the static-tail pressure
   ``s + tail_lateness[task]`` minus a rounding margin (sound for
   bounds dominating the critical-path recursion).  Discards happen at
   the *old* threshold, which only tightens before the reference engine
   would test the same child, so every pre-checked child is one the
   reference prunes too: ``generated``/``explored``/``pruned`` counters
   stay byte-identical.
3. **Scratch buffers** — the incremental evaluator works in reusable
   scratch vectors; tuples/lists are frozen (:meth:`commit`) only for
   children that actually enter the active set.

Search-order parity: the pre-check is enabled only when the
characteristic function admits everything, the dominance checker is a
no-op *or supports the replay-consistent probe contract* (see below),
the bound is monotone and elimination is monotone in the bound.  Under
those conditions every non-goal child consumes a sequence number
exactly as the reference loop would have (pre-checked children *are*
reference-pruned children, and reference pruning happens after seq
assignment), so heap tie-breaks — hence exploration order and all
statistics — are unchanged.  Outside those conditions the expander
still runs (incremental bounds, scratch buffers) but discards nothing
early, and stateful dominance checkers observe the exact reference
child stream.

Stateful dominance on the fast path: a checker advertising
``supports_probe`` (the transposition layer) answers
``probe_placement(parent, task, proc, s, f)`` identically to
materializing the child and calling ``is_dominated`` — including store
mutations.  The expander probes every non-goal placement *first*,
before any bound-based discard, because that is where the reference
loop runs dominance: before its post-expansion threshold filter.  A
dominated child consumes no sequence number on either path; a probe
survivor is recorded in the checker's store on both paths even if the
pre-check then discards it (the reference loop records it and prunes it
at the threshold filter).  Counters therefore stay byte-identical, and
the lazy :class:`PendingChild` deferral stays on — nothing downstream
of the probe inspects the child state.
"""

from __future__ import annotations

import math

from ..model.compile import CompiledProblem
from .branching import PreparedBranching
from .bounds import LowerBound
from .dominance import DominanceChecker
from .elimination import EliminationRule, UDBASElimination
from .feasibility import CharacteristicFunction
from .state import SearchState, root_state
from .vertex import Vertex

__all__ = [
    "FusedExpander",
    "PendingChild",
    "BatchExpander",
    "make_batch_expander",
]


class PendingChild:
    """A frontier child's state, deferred until the vertex is popped.

    Best-first searches push far more children than they ever pop — the
    rest are swept when the incumbent improves, dropped by MAXSZAS, or
    abandoned when the stop condition fires.  Freezing five tuples per
    pushed child is therefore mostly wasted work.  When the fused path
    runs with no characteristic function and no dominance rule (nothing
    downstream inspects child states), it pushes this placement record
    instead; :meth:`~FusedExpander.expand` materializes the real
    :class:`~repro.core.state.SearchState` on first expansion.

    The shim exposes the two attributes the engine reads off unexpanded
    vertices (``level`` for telemetry, ``is_goal`` for completeness —
    goal vertices never enter the active set, so it is always False).
    """

    __slots__ = ("parent", "task", "proc", "s", "f", "lmin", "level")

    is_goal = False

    def __init__(
        self,
        parent: SearchState,
        task: int,
        proc: int,
        s: float,
        f: float,
        lmin: float | None,
    ) -> None:
        self.parent = parent
        self.task = task
        self.proc = proc
        self.s = s
        self.f = f
        self.lmin = lmin
        self.level = parent.level + 1

    def materialize(self) -> SearchState:
        state = self.parent.child_placed(self.task, self.proc, self.s, self.f)
        if self.lmin is not None:
            state._lmin = self.lmin
        return state

    def __reduce__(self):
        # Pickling a pending child naively would drag in its parent
        # state — and, through chained pending parents, an unbounded
        # prefix of the search tree.  The parallel driver ships frontier
        # states across processes, so serialize the materialized flat
        # state instead: the receiver observes exactly what
        # ``materialize()`` would have produced locally.
        return (_identity, (self.materialize(),))


def _identity(state: SearchState) -> SearchState:
    """Unpickle target for :meth:`PendingChild.__reduce__`."""
    return state


class FusedExpander:
    """One per solve; :meth:`expand` returns one flat result tuple."""

    __slots__ = (
        "p",
        "prepared",
        "bound",
        "inc",
        "charf",
        "dominance",
        "elim",
        "break_symmetry",
        "admits_all",
        "dom_noop",
        "dom_probe",
        "precheck",
        "tail_check",
        "lazy_states",
        "fast_udbas",
        "uses_lmin",
        "_procs",
        "_eps",
        "_maxabs_deadline",
        "_floc",
    )

    def __init__(
        self,
        problem: CompiledProblem,
        prepared: PreparedBranching,
        bound: LowerBound,
        charf: CharacteristicFunction,
        dominance: DominanceChecker,
        elim: EliminationRule,
        break_symmetry: bool,
    ) -> None:
        self.p = problem
        self.prepared = prepared
        self.bound = bound
        self.inc = bound.make_incremental(problem)
        self.charf = charf
        self.dominance = dominance
        self.elim = elim
        self.break_symmetry = break_symmetry
        self.admits_all = charf.admits_all
        self.dom_noop = dominance.is_noop
        # A probe-capable checker (transposition layer) is consulted at
        # the top of the placement loop instead of on materialized
        # children; only sound when the characteristic function admits
        # everything (the reference loop runs it before dominance).
        self.dom_probe = (
            dominance.probe_placement
            if (
                self.admits_all
                and not self.dom_noop
                and dominance.supports_probe
            )
            else None
        )
        # Early discards are sound only when nothing downstream of the
        # bound test can observe the discarded child (see module doc) —
        # or when the one observer is a probe-capable checker consulted
        # up front.
        self.precheck = (
            self.admits_all
            and (self.dom_noop or self.dom_probe is not None)
            and bound.monotone
            and elim.monotone_in_bound
        )
        self.tail_check = self.precheck and bound.tail_admissible
        # Child states may be deferred whenever nothing downstream of
        # the bound inspects them (no filter, and any dominance store is
        # fed through the probe before deferral).
        self.lazy_states = self.admits_all and (
            self.dom_noop or self.dom_probe is not None
        )
        # U/DBAS's threshold test is a bare comparison; inlining it
        # saves three method calls per child on the default config.
        self.fast_udbas = type(elim) is UDBASElimination
        self.uses_lmin = self.inc.uses_lmin if self.inc is not None else False
        # Rounding margin for the tail pre-check: the reference bound
        # accumulates the chain `s + c_1 + ... + c_k - D_k` one float op
        # at a time while `tail_lateness` pre-sums it in a different
        # association order.  Round-to-nearest keeps each partial sum
        # within 2^-52 relative, so discounting
        # `eps * (|s| + tail + max|D|)` with eps = 4 (n + 2) 2^-52 can
        # never discard a child whose true bound is below the threshold.
        self._eps = 4.0 * (problem.n + 2) * 2.0 ** -52
        self._maxabs_deadline = (
            max(abs(d) for d in problem.deadline) if problem.n else 0.0
        )
        self._procs = tuple(range(problem.m))
        #: Per-task scratch: max local predecessor finish per processor.
        self._floc = [-math.inf] * problem.m

    # ------------------------------------------------------------------

    def root(self) -> Vertex:
        """Root vertex carrying the incremental estimate vectors."""
        return self.root_from(root_state(self.p))

    def root_from(
        self, state: SearchState, lower_bound: float | None = None
    ) -> Vertex:
        """Seed vertex for a search rooted at an arbitrary state.

        Sub-searches (the parallel driver's subtree shards) restart the
        engine from a mid-tree state shipped across a process boundary.
        The incremental evaluator rebuilds the estimate vectors with a
        full evaluation — the same float operations the fused path's
        commit chain performed, so the vectors (and every child bound
        derived from them) are bitwise identical to the originals.  When
        the caller already knows the vertex's bound it passes it in;
        otherwise the fresh evaluation supplies it.
        """
        inc = self.inc
        if inc is not None:
            lb, est, estart = inc.root(state)
            if lower_bound is not None:
                lb = lower_bound
            return Vertex(state, lb, 0, est, estart)
        if lower_bound is None:
            lower_bound = self.bound.evaluate(state)
        return Vertex(state, lower_bound, 0)

    def expand(self, vertex: Vertex, threshold: float, seq: int):
        """Branch ``vertex``, bound every child, admit the survivors.

        Returns ``(seq, children, generated, goals, skipped,
        infeasible, dominated, best_goal_cost, best_goal_state)`` as one
        flat tuple the engine unpacks into its counters.
        """
        p = self.p
        state = vertex.state
        if type(state) is PendingChild:
            state = state.materialize()
            vertex.state = state
        parent_lb = vertex.lower_bound
        inc = self.inc
        est = vertex.est
        estart = vertex.estart
        if inc is not None and est is None:
            # Defensive: on an all-fused solve even the root carries its
            # vectors, but recover gracefully if a vertex arrived bare.
            _, est, estart = inc.root(state)
        # Iterate branch_tasks x procs directly (task-major, the exact
        # placements() order) so per-task values hoist out of the
        # processor loop and no placement-tuple list is built.
        tasks = self.prepared.branch_tasks(state)
        procs = (
            self.prepared._procs_for(state, True)
            if self.break_symmetry
            else self._procs
        )

        proc_of = state.proc_of
        fin = state.finish
        avail = state.avail
        wcet = p.wcet
        arrival = p.arrival
        deadline = p.deadline
        tail = p.tail
        tail_lateness = p.tail_lateness
        pred_edges = p.pred_edges
        uniform = p.uniform_delay
        earliest_start = p.earliest_start
        child_placed = state.child_placed
        elim_prune = self.elim.should_prune
        inc_child = inc.child if inc is not None else None
        sched_parent = state.scheduled_mask
        # Every placement is one level deeper; hoist the goal test.
        goal_children = state.level == p.n - 1

        precheck = self.precheck
        tail_check = self.tail_check
        lazy = self.lazy_states
        fast = self.fast_udbas
        admits_all = self.admits_all
        dom_noop = self.dom_noop
        dom_probe = self.dom_probe
        eps = self._eps
        maxd = self._maxabs_deadline
        uses_lmin = self.uses_lmin
        lmin = 0.0
        lmin_changed = False
        if uses_lmin:
            # Placing on processor q replaces avail[q] with a no-smaller
            # finish time, so the child's l_min moves only when q was
            # the *unique* minimum: precompute the minimum's value,
            # multiplicity and runner-up once per expansion.
            parent_lmin = state.min_avail()
            nmin = 0
            lmin2 = math.inf
            for a in avail:
                if a == parent_lmin:
                    nmin += 1
                elif a < lmin2:
                    lmin2 = a
            if nmin == 1:
                # Some child may advance the floor (to at most lmin2);
                # let the evaluator cache the tasks a shift can move.
                inc.begin(est, estart, sched_parent, lmin2)
        else:
            parent_lmin = 0.0

        children: list[Vertex] = []
        goals = 0
        skipped = 0
        infeasible = 0
        dominated = 0
        best_goal_cost = math.inf
        best_goal_state: SearchState | None = None

        if goal_children:
            # Goal vertices: their cost is the true maximum lateness.
            # Never pre-checked, never sequenced (goals do not enter the
            # active set) — exactly the reference flow.
            generated = 0
            floc = self._floc
            m = p.m
            for task in tasks:
                wt = wcet[task]
                arr = arrival[task]
                cmask = sched_parent | (1 << task)
                if uniform is not None:
                    # One pass over predecessors: max local finish per
                    # host plus the top-two remote arrivals by host, so
                    # each processor's earliest start is O(1) below.
                    for q in range(m):
                        floc[q] = -math.inf
                    r1 = r2 = -math.inf
                    h1 = -1
                    for j, size in pred_edges[task]:
                        fj = fin[j]
                        pj = proc_of[j]
                        if fj > floc[pj]:
                            floc[pj] = fj
                        rj = fj + size * uniform
                        if pj == h1:
                            if rj > r1:
                                r1 = rj
                        elif rj > r1:
                            r2 = r1
                            r1 = rj
                            h1 = pj
                        elif rj > r2:
                            r2 = rj
                for proc in procs:
                    generated += 1
                    goals += 1
                    ap = avail[proc]
                    if uniform is not None:
                        s = arr
                        if ap > s:
                            s = ap
                        fl = floc[proc]
                        if fl > s:
                            s = fl
                        rmax = r2 if h1 == proc else r1
                        if rmax > s:
                            s = rmax
                    else:
                        s = earliest_start(task, proc, proc_of, fin, ap)
                    f = s + wt
                    if inc is not None:
                        if uses_lmin:
                            if ap != parent_lmin or nmin > 1:
                                lmin = parent_lmin
                                lmin_changed = False
                            else:
                                lmin = lmin2 if lmin2 < f else f
                                lmin_changed = lmin != parent_lmin
                        child_lb = inc_child(
                            est, estart, parent_lb, task, f,
                            cmask, lmin, lmin_changed,
                        )
                        if child_lb < best_goal_cost:
                            best_goal_cost = child_lb
                            best_goal_state = child_placed(task, proc, s, f)
                    else:
                        child_state = child_placed(task, proc, s, f)
                        child_lb = self.bound.evaluate(child_state)
                        if child_lb < best_goal_cost:
                            best_goal_cost = child_lb
                            best_goal_state = child_state
            return (
                seq, children, generated, goals, skipped,
                infeasible, dominated, best_goal_cost, best_goal_state,
            )

        generated = len(tasks) * len(procs)
        floc = self._floc
        m = p.m
        for task in tasks:
            wt = wcet[task]
            dl = deadline[task]
            arr = arrival[task]
            cmask = sched_parent | (1 << task)
            tl = tail_lateness[task]
            tb = tail[task]
            if uniform is not None:
                # One pass over predecessors (same float expressions as
                # earliest_start; max is exact, so any evaluation order
                # gives bit-identical starts): max local finish per host
                # plus the top-two remote arrivals by host.  Each
                # processor's earliest start is then O(1): the global
                # remote max r1 applies unless the processor *is* r1's
                # host, in which case the best other-host arrival r2
                # (exactly max over hosts != h1) applies.
                for q in range(m):
                    floc[q] = -math.inf
                r1 = r2 = -math.inf
                h1 = -1
                for j, size in pred_edges[task]:
                    fj = fin[j]
                    pj = proc_of[j]
                    if fj > floc[pj]:
                        floc[pj] = fj
                    rj = fj + size * uniform
                    if pj == h1:
                        if rj > r1:
                            r1 = rj
                    elif rj > r1:
                        r2 = r1
                        r1 = rj
                        h1 = pj
                    elif rj > r2:
                        r2 = rj
            for proc in procs:
                ap = avail[proc]
                if uniform is not None:
                    s = arr
                    if ap > s:
                        s = ap
                    fl = floc[proc]
                    if fl > s:
                        s = fl
                    rmax = r2 if h1 == proc else r1
                    if rmax > s:
                        s = rmax
                else:
                    s = earliest_start(task, proc, proc_of, fin, ap)
                f = s + wt

                if dom_probe is not None and dom_probe(state, task, proc, s, f):
                    # Duplicate/dominated placement.  Probed before any
                    # bound discard — the reference loop runs dominance
                    # ahead of its threshold filter — and, like there, a
                    # dominated child consumes no sequence number.
                    dominated += 1
                    continue

                if precheck:
                    # Exact floor: monotone bounds satisfy
                    # L(child) >= max(L(parent), f - D_task).
                    floor = f - dl
                    if floor < parent_lb:
                        floor = parent_lb
                    if (floor >= threshold) if fast else elim_prune(
                        floor, threshold
                    ):
                        skipped += 1
                        seq += 1
                        continue
                    if tail_check:
                        press = s + tl - eps * (
                            (s if s >= 0.0 else -s) + tb + maxd
                        )
                        if (press >= threshold) if fast else elim_prune(
                            press, threshold
                        ):
                            skipped += 1
                            seq += 1
                            continue

                if inc is not None:
                    if uses_lmin:
                        if ap != parent_lmin or nmin > 1:
                            lmin = parent_lmin
                            lmin_changed = False
                        else:
                            lmin = lmin2 if lmin2 < f else f
                            lmin_changed = lmin != parent_lmin
                    child_lb = inc_child(
                        est, estart, parent_lb, task, f,
                        cmask, lmin, lmin_changed,
                    )
                    if precheck and (
                        (child_lb >= threshold) if fast else elim_prune(
                            child_lb, threshold
                        )
                    ):
                        # The exact bound is doomed: the reference
                        # engine would freeze this child only to prune
                        # it at a threshold no larger than the current
                        # one.
                        skipped += 1
                        seq += 1
                        continue
                    cest, cestart = inc.commit()
                    if lazy:
                        children.append(Vertex(
                            PendingChild(
                                state, task, proc, s, f,
                                lmin if uses_lmin else None,
                            ),
                            child_lb, seq, cest, cestart,
                        ))
                        seq += 1
                        continue
                    child_state = child_placed(task, proc, s, f)
                    if uses_lmin:
                        child_state._lmin = lmin
                    if not admits_all and not self.charf.admits(
                        child_state, child_lb
                    ):
                        infeasible += 1
                        continue
                    if (
                        not dom_noop
                        and dom_probe is None
                        and self.dominance.is_dominated(child_state)
                    ):
                        dominated += 1
                        continue
                    children.append(
                        Vertex(child_state, child_lb, seq, cest, cestart)
                    )
                    seq += 1
                else:
                    # No incremental form (e.g. LB2): full evaluation,
                    # but the pre-check still spares doomed children
                    # the freeze and the recursion.
                    child_state = child_placed(task, proc, s, f)
                    child_lb = self.bound.evaluate(child_state)
                    if precheck and (
                        (child_lb >= threshold) if fast else elim_prune(
                            child_lb, threshold
                        )
                    ):
                        skipped += 1
                        seq += 1
                        continue
                    if not admits_all and not self.charf.admits(
                        child_state, child_lb
                    ):
                        infeasible += 1
                        continue
                    if (
                        not dom_noop
                        and dom_probe is None
                        and self.dominance.is_dominated(child_state)
                    ):
                        dominated += 1
                        continue
                    children.append(Vertex(child_state, child_lb, seq))
                    seq += 1

        return (
            seq, children, generated, goals, skipped,
            infeasible, dominated, best_goal_cost, best_goal_state,
        )


# ----------------------------------------------------------------------
# Array engine: vectorized batch expansion over the state arena
# ----------------------------------------------------------------------
#
# The batch path computes earliest starts, tail-based admission and the
# LB0/LB1 fast-path bounds for *all* children of a vertex in single
# numpy passes over the parent's arena row.  Placements whose bound
# needs a real repair walk (a minority on the paper workloads) fall back
# to the scalar incremental evaluator on exactly the inputs the fused
# path would hand it, so every float — and therefore every counter and
# sequence number — matches the object engine bit-for-bit.  The batch
# kernels are deliberately small, pure functions of the numpy problem
# mirror so the Hypothesis suite can differential-test each one against
# the scalar reference in isolation.

import numpy as np

from .arena import ArenaProblem, ArenaState, StateArena
from .bounds import _IncrementalLB0, _IncrementalLB1, _IncrementalTrivial
from .branching import _PreparedBFn, _PreparedFixedOrder
from .elimination import NoElimination


def _flat_edge_indices(starts, counts, total):
    """Flat CSR gather indices for a batch of segments.

    ``starts[i]``/``counts[i]`` delimit segment ``i``; returns an int64
    array of length ``total`` listing every segment's members in order.
    """
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts, counts)
    seg0 = np.cumsum(counts) - counts
    offs = np.arange(total, dtype=np.int64) - np.repeat(seg0, counts)
    return base + offs


def batch_earliest_starts(ap, proc_row, finish_row, avail_row, tasks, procs):
    """Start/finish matrices for every (task, proc) placement.

    Replicates ``CompiledProblem.earliest_start`` elementwise: each
    edge contributes ``finish[j]`` locally and ``finish[j] + size * d``
    remotely, both as the identical two-operation float chains, and the
    surrounding maxes are exact in IEEE-754 regardless of evaluation
    order.  Returns ``(S, F)`` of shape ``(len(tasks), len(procs))``.
    """
    counts = ap.pred_off[tasks + 1] - ap.pred_off[tasks]
    total = int(counts.sum())
    base = np.maximum(ap.arrival[tasks][:, None], avail_row[procs][None, :])
    if total:
        flat = _flat_edge_indices(ap.pred_off[tasks], counts, total)
        ej = ap.pred_idx[flat]
        fj = finish_row[ej]
        pj = proc_row[ej].astype(np.int64)
        sz = ap.pred_size[flat]
        if ap.uniform is not None:
            rem = fj + sz * ap.uniform
            r = np.where(pj[:, None] == procs[None, :], fj[:, None], rem[:, None])
        else:
            r = fj[:, None] + sz[:, None] * ap.delay[pj[:, None], procs[None, :]]
        seg0 = np.cumsum(counts) - counts
        segmax = np.maximum.reduceat(r, np.minimum(seg0, total - 1), axis=0)
        segmax[counts == 0] = -np.inf
        S = np.maximum(base, segmax)
    else:
        S = base
    F = S + ap.wcet[tasks][:, None]
    return S, F


def batch_admission(ap, S, F, tasks, parent_lb, threshold, tail_check, exact):
    """Admission pre-check mask: True where the child is a proven skip.

    The floor test ``max(parent_lb, f - D) >= threshold`` is exact for
    monotone bounds.  The tail pressure test normally discounts the
    fused rounding margin; on a certified-exact cost domain the
    pre-summed tail equals the reference chain exactly, so the margin
    is dropped (a margin-free skip implies the exact child bound meets
    the threshold, and skip/post-check discards count identically).
    """
    dl = ap.deadline[tasks][:, None]
    floor = F - dl
    np.maximum(floor, parent_lb, out=floor)
    skip = floor >= threshold
    if tail_check:
        tl = ap.tail_lateness[tasks][:, None]
        if exact:
            press = S + tl
        else:
            tb = ap.tail[tasks][:, None]
            press = S + tl - ap.eps * (np.abs(S) + tb + ap.maxabs_deadline)
        skip |= press >= threshold
    return skip, floor


def batch_lmin(avail_procs, parent_lmin, nmin, lmin2, F):
    """Per-child ``l_min`` floor and moved-flag (LB1 only).

    Mirrors the fused per-placement branch: the floor moves only when
    the placement host held the *unique* parent minimum, in which case
    the child floor is ``min(lmin2, f)``.
    """
    cond = (avail_procs[None, :] == parent_lmin) & (nmin == 1)
    lmin = np.where(cond, np.minimum(lmin2, F), parent_lmin)
    changed = cond & (lmin != parent_lmin)
    return lmin, changed


def batch_lb_fast(est_tasks, F, floor, lb1, changed, min_cand, lmin):
    """Fast-path mask + bound for the incremental LB0/LB1 evaluators.

    A placement realizes its estimate (``f == est[task]``) iff the
    repair walk is a no-op; LB1 additionally requires that an advanced
    floor cannot move any unscheduled candidate (every candidate
    estimate is already >= the child floor).  For fast placements the
    bound is the closed form ``max(parent_lb, f - D)`` — exactly the
    admission floor.
    """
    fast = F == est_tasks[:, None]
    if lb1:
        fast &= ~changed | (min_cand >= lmin)
    return fast, floor


class BatchExpander:
    """Arena-backed expander: same ``expand`` contract as FusedExpander.

    Only constructed by :func:`make_batch_expander` for configurations
    whose counters it provably replicates (see the factory's gates);
    everything else keeps the fused scalar path.
    """

    __slots__ = (
        "p",
        "ap",
        "arena",
        "prepared",
        "bound",
        "inc",
        "elim",
        "break_symmetry",
        "bound_kind",
        "uses_lmin",
        "prune",
        "tail_check",
        "precheck",
        "lazy_states",
        "fast_udbas",
        "admits_all",
        "dom_noop",
        "_procs",
        "_bitcols",
    )

    def __init__(
        self,
        problem: CompiledProblem,
        prepared: PreparedBranching,
        bound: LowerBound,
        elim: EliminationRule,
        break_symmetry: bool,
        bound_kind: int,
    ) -> None:
        self.p = problem
        self.ap = ArenaProblem(problem)
        self.arena = StateArena(self.ap, track_est=bound_kind != 0)
        self.prepared = prepared
        self.bound = bound
        self.inc = bound.make_incremental(problem)
        self.elim = elim
        self.break_symmetry = break_symmetry
        self.bound_kind = bound_kind
        self.uses_lmin = bound_kind == 2
        # Only U/DBAS discards children; NoElimination never prunes, so
        # its admission masks are identically False (as in the fused
        # path, where elim_prune is constant False).
        self.prune = type(elim) is UDBASElimination
        self.tail_check = self.prune and bound.tail_admissible
        # Mirrors FusedExpander's flags for the engine's postfilter
        # decision (gates guarantee the fused values).
        self.precheck = True
        self.lazy_states = True
        self.fast_udbas = self.prune
        self.admits_all = True
        self.dom_noop = True
        self._procs = np.arange(problem.m, dtype=np.int64)
        self._bitcols = np.arange(problem.n, dtype=np.uint64)

    # ------------------------------------------------------------------

    def root(self) -> Vertex:
        return self.root_from(root_state(self.p))

    def root_from(
        self, state: SearchState, lower_bound: float | None = None
    ) -> Vertex:
        lb, est, estart = self.inc.root(state)
        if lower_bound is not None:
            lb = lower_bound
        slot = self.arena.adopt(
            state,
            est if self.bound_kind else None,
            estart if self.bound_kind else None,
        )
        return Vertex(ArenaState(self.arena, slot), lb, 0)

    def _ensure_row(self, vertex: Vertex) -> ArenaState:
        """Adopt a foreign (non-arena) vertex state into the arena."""
        state = vertex.state
        if type(state) is PendingChild:
            state = state.materialize()
        _, est, estart = self.inc.root(state)
        slot = self.arena.adopt(
            state,
            est if self.bound_kind else None,
            estart if self.bound_kind else None,
        )
        handle = ArenaState(self.arena, slot)
        handle._mat = state if type(state) is SearchState else None
        vertex.state = handle
        return handle

    # ------------------------------------------------------------------

    def expand(self, vertex: Vertex, threshold: float, seq: int):
        """Batch-expand one vertex; same flat 9-tuple as FusedExpander."""
        arena = self.arena
        ap = self.ap
        state = vertex.state
        if type(state) is not ArenaState or state.arena is not arena:
            state = self._ensure_row(vertex)
        slot = state.slot
        parent_lb = vertex.lower_bound
        n, m = ap.n, ap.m

        tasks_list = self.prepared.branch_tasks(state)
        if self.break_symmetry:
            procs_list = self.prepared._procs_for(state, True)
            procs = np.asarray(procs_list, dtype=np.int64)
        else:
            procs_list = None
            procs = self._procs
        tasks = np.asarray(tasks_list, dtype=np.int64)

        proc_row = arena.proc_of[slot]
        fin_row = arena.finish[slot]
        av_row = arena.avail[slot]
        sched = int(arena.sched[slot])
        level = int(arena.level[slot])

        S, F = batch_earliest_starts(ap, proc_row, fin_row, av_row, tasks, procs)
        nt = tasks.shape[0]
        np_ = procs.shape[0]

        if level == n - 1:
            # Goal children: closed-form bound (the repair walk is a
            # no-op at the last level for trivial/LB0/LB1), first
            # minimum in placement order wins, no sequence numbers.
            lbm = F - ap.deadline[tasks][:, None]
            np.maximum(lbm, parent_lb, out=lbm)
            k = int(np.argmin(lbm))
            ti, qi = divmod(k, np_)
            best_goal_cost = float(lbm[ti, qi])
            best_goal_state = state.child_placed(
                int(tasks[ti]), int(procs[qi]), float(S[ti, qi]), float(F[ti, qi])
            )
            count = nt * np_
            return (seq, [], count, count, 0, 0, 0, best_goal_cost, best_goal_state)

        generated = nt * np_
        if self.prune:
            skip, floor = batch_admission(
                ap, S, F, tasks, parent_lb, threshold,
                self.tail_check, ap.domain.exact,
            )
        else:
            dl = ap.deadline[tasks][:, None]
            floor = F - dl
            np.maximum(floor, parent_lb, out=floor)
            skip = np.zeros(F.shape, dtype=bool)

        uses_lmin = self.uses_lmin
        inc = self.inc
        est_list = estart_list = None
        lmin_mat = changed = None
        if uses_lmin:
            parent_lmin = float(arena.lmin[slot])
            nmin = int(np.count_nonzero(av_row == parent_lmin))
            others = av_row[av_row != parent_lmin]
            lmin2 = float(others.min()) if others.size else math.inf
            est_row = arena.est[slot]
            estart_row = arena.estart[slot]
            if nmin == 1:
                est_list = est_row.tolist()
                estart_list = estart_row.tolist()
                inc.begin(est_list, estart_list, sched, lmin2)
                sched_bits = ((np.uint64(sched) >> self._bitcols) & np.uint64(1)).astype(bool)
                cand = estart_row[(estart_row < lmin2) & ~sched_bits]
                min_cand = float(cand.min()) if cand.size else math.inf
            else:
                min_cand = math.inf
            lmin_mat, changed = batch_lmin(
                av_row[procs], parent_lmin, nmin, lmin2, F
            )
        elif self.bound_kind:
            est_row = arena.est[slot]
            estart_row = arena.estart[slot]

        if self.bound_kind:
            fast, clb_fast = batch_lb_fast(
                est_row[tasks], F, floor, uses_lmin, changed,
                min_cand if uses_lmin else 0.0, lmin_mat,
            )
            clb = clb_fast.copy()
            slow = ~fast & ~skip
            slow_commits = {}
            if slow.any():
                if est_list is None:
                    est_list = est_row.tolist()
                    estart_list = estart_row.tolist()
                lin_of = np_  # row stride
                prune = self.prune
                for ti, qi in zip(*np.nonzero(slow)):
                    t = int(tasks[ti])
                    f = float(F[ti, qi])
                    if uses_lmin:
                        lmn = float(lmin_mat[ti, qi])
                        lch = bool(changed[ti, qi])
                    else:
                        lmn = 0.0
                        lch = False
                    val = inc.child(
                        est_list, estart_list, parent_lb, t, f,
                        sched | (1 << t), lmn, lch,
                    )
                    clb[ti, qi] = val
                    if not (prune and val >= threshold):
                        slow_commits[int(ti) * lin_of + int(qi)] = inc.commit()
        else:
            clb = floor

        if self.prune:
            kept = ~(skip | (clb >= threshold))
        else:
            kept = ~skip
        skipped = int(generated - np.count_nonzero(kept))

        K = int(np.count_nonzero(kept))
        children: list[Vertex] = []
        if K:
            lin = np.arange(generated, dtype=np.int64).reshape(nt, np_)
            klin = lin[kept]
            kt = np.broadcast_to(tasks[:, None], (nt, np_))[kept]
            kq = np.broadcast_to(procs[None, :], (nt, np_))[kept]
            kS = S[kept]
            kF = F[kept]
            klb = clb[kept]
            plat = float(arena.lateness[slot])
            pstart = arena.start[slot].copy()
            pfin = fin_row.copy()
            pav = av_row.copy()
            pproc = proc_row.copy()
            if self.bound_kind:
                pest = est_row.copy()
                pestart = estart_row.copy()
            slots = arena.alloc_many(K)

            arena.sched[slots] = np.uint64(sched) | (
                np.uint64(1) << kt.astype(np.uint64)
            )
            # Ready masks: hoisted per task (placement host does not
            # affect readiness), computed with Python ints over the
            # successor CSR.
            ready_mask = int(arena.ready[slot])
            pm = self.p.pred_mask
            so = ap.succ_off
            si = ap.succ_idx
            creadys = np.empty(nt, dtype=np.uint64)
            for i in range(nt):
                t = int(tasks[i])
                bit = 1 << t
                cmask = sched | bit
                cr = ready_mask & ~bit
                inv = ~cmask
                for e in range(int(so[t]), int(so[t + 1])):
                    j = int(si[e])
                    if not (cmask >> j) & 1 and (pm[j] & inv) == 0:
                        cr |= 1 << j
                creadys[i] = cr
            arena.ready[slots] = np.broadcast_to(creadys[:, None], (nt, np_))[kept]
            arena.level[slots] = level + 1
            dlk = np.broadcast_to(ap.deadline[tasks][:, None], (nt, np_))[kept]
            arena.lateness[slots] = np.maximum(kF - dlk, plat)
            arena.last_task[slots] = kt
            arena.last_proc[slots] = kq
            arena.proc_of[slots] = pproc
            arena.proc_of[slots, kt] = kq.astype(np.int8)
            arena.start[slots] = pstart
            arena.start[slots, kt] = kS
            arena.finish[slots] = pfin
            arena.finish[slots, kt] = kF
            arena.avail[slots] = pav
            arena.avail[slots, kq] = kF
            if uses_lmin:
                arena.lmin[slots] = lmin_mat[kept]
            else:
                arena.lmin[slots] = arena.avail[slots].min(axis=1)
            if self.bound_kind:
                arena.est[slots] = pest
                arena.estart[slots] = pestart
                arena.estart[slots, kt] = kF
                if slow_commits:
                    for pos in range(K):
                        com = slow_commits.get(int(klin[pos]))
                        if com is not None:
                            arena.est[slots[pos]] = com[0]
                            arena.estart[slots[pos]] = com[1]

            kseq = seq + klin
            children = [
                Vertex(ArenaState(arena, int(sl)), float(lb_), int(sq))
                for sl, lb_, sq in zip(slots, klb, kseq)
            ]

        seq += generated
        return (seq, children, generated, 0, skipped, 0, 0, math.inf, None)


def make_batch_expander(
    problem: CompiledProblem,
    prepared: PreparedBranching,
    bound: LowerBound,
    charf: CharacteristicFunction,
    dominance: DominanceChecker,
    elim: EliminationRule,
    break_symmetry: bool,
):
    """Build a :class:`BatchExpander` when parity is provable, else None.

    Gates: the characteristic function admits everything and dominance
    is a no-op (nothing observes discarded children), elimination is
    U/DBAS or none (bare threshold compare / constant False), the bound
    has an incremental trivial/LB0/LB1 form (monotone, with the goal
    closed form), and branching is BFn or fixed-order (readiness masks
    fully describe the task set).
    """
    if not charf.admits_all or not dominance.is_noop:
        return None
    if type(elim) not in (UDBASElimination, NoElimination):
        return None
    if type(prepared) not in (_PreparedBFn, _PreparedFixedOrder):
        return None
    if not bound.monotone:
        return None
    inc = bound.make_incremental(problem)
    if type(inc) is _IncrementalTrivial:
        kind = 0
    elif type(inc) is _IncrementalLB0:
        kind = 1
    elif type(inc) is _IncrementalLB1:
        kind = 2
    else:
        return None
    if problem.n == 0:
        return None
    return BatchExpander(problem, prepared, bound, elim, break_symmetry, kind)
