"""Immutable partial-schedule states for the search tree.

Each vertex of the branch-and-bound search tree owns a
:class:`SearchState`: one specific task-to-processor assignment and
schedule ordering prefix.  States are immutable; branching creates a
child state by appending one (task, processor) placement via the
Section 4.3 scheduling operation.

Representation (hot path — flat tuples and bitmasks, per the HPC guides):

* ``scheduled_mask`` / ``ready_mask`` — bitmask integers over task indices;
* ``proc_of`` / ``start`` / ``finish`` — per-task placement tuples
  (``proc_of[i] == -1`` when unscheduled);
* ``avail`` — per-processor finish time of the last appended task;
* ``scheduled_lateness`` — running max lateness of the placed tasks,
  maintained incrementally.

Creating a child is O(deg + n) dominated by the small tuple copies
(n <= 16 in the paper's workloads).

Canonical signatures
--------------------
Every state additionally carries a Zobrist-style signature for the
duplicate-detection layer (:mod:`repro.core.transposition`): a 64-bit
hash identifying the state *up to processor relabeling* on uniform
interconnects (exactly otherwise), maintained incrementally — appending
one placement updates the signature with O(1) arithmetic instead of
re-hashing the placement tuples from scratch.  The construction keeps
one commutative accumulator per processor (order within a processor
does not affect state identity: the per-task start times already pin
the execution) and combines them through a non-linear mixer, summed
commutatively across processors so relabelings cancel; on non-uniform
topologies a per-processor salt re-introduces label sensitivity.
Signature equality is a *candidate* test only — the transposition table
verifies candidates against the exact packed canonical payload.
"""

from __future__ import annotations

from ..errors import ModelError
from ..model.compile import CompiledProblem

__all__ = [
    "SearchState",
    "AOState",
    "root_state",
    "ao_root_state",
    "mix64",
    "placement_key",
    "proc_salt",
    "UNIFORM_SALT",
]

_NEG_INF = float("-inf")

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

#: Salt folded into every per-processor accumulator on *uniform*
#: interconnects — identical across processors, so permuting processor
#: contents leaves the combined signature unchanged.
UNIFORM_SALT = 0x5851F42D4C957F2D


def mix64(x: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer."""
    x &= _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def placement_key(task: int, start: float) -> int:
    """Deterministic 64-bit Zobrist key for one (task, start) placement.

    Derived arithmetically instead of from a random table so every
    process — including pool workers sharing a transposition segment —
    agrees on the keys without shipping any state.  ``hash`` of a float
    is deterministic in CPython (numeric hashing is not salted by
    ``PYTHONHASHSEED``).
    """
    return mix64(((task + 1) * _GOLDEN) ^ (hash(start) & _MASK64))


def proc_salt(proc: int) -> int:
    """Per-processor salt for label-sensitive (non-uniform) signatures."""
    return mix64((proc + 1) * _GOLDEN ^ 0xD6E8FEB86659FD93)


class SearchState(object):
    """One partial (or complete) schedule: a search-tree vertex's payload."""

    #: Extra lower bound carried by the state itself (class attribute, so
    #: every plain state reads ``-inf`` at zero storage cost).  The
    #: allocation-ordered states below shadow it with a per-instance
    #: allocation-load bound; the engine takes ``max(L(v), lb_floor)``.
    lb_floor: float = _NEG_INF

    __slots__ = (
        "problem",
        "scheduled_mask",
        "ready_mask",
        "proc_of",
        "start",
        "finish",
        "avail",
        "level",
        "scheduled_lateness",
        "last_task",
        "last_proc",
        "_lmin",
        "psig",
        "sigacc",
    )

    def __init__(
        self,
        problem: CompiledProblem,
        scheduled_mask: int,
        ready_mask: int,
        proc_of: tuple[int, ...],
        start: tuple[float, ...],
        finish: tuple[float, ...],
        avail: tuple[float, ...],
        level: int,
        scheduled_lateness: float,
        last_task: int = -1,
        last_proc: int = -1,
        lmin: float | None = None,
        psig: tuple[int, ...] | None = None,
        sigacc: int | None = None,
    ) -> None:
        self.problem = problem
        self.scheduled_mask = scheduled_mask
        self.ready_mask = ready_mask
        self.proc_of = proc_of
        self.start = start
        self.finish = finish
        self.avail = avail
        self.level = level
        self.scheduled_lateness = scheduled_lateness
        self.last_task = last_task
        self.last_proc = last_proc
        self._lmin = lmin
        # Zobrist accumulators: per-processor commutative sums and their
        # mixed combination.  ``None`` for states built by hand; lazily
        # recomputed from scratch on first signature() call.
        self.psig = psig
        self.sigacc = sigacc

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_goal(self) -> bool:
        """All tasks placed — the vertex is a goal vertex."""
        return self.scheduled_mask == self.problem.all_mask

    def is_scheduled(self, task: int) -> bool:
        return bool(self.scheduled_mask >> task & 1)

    def is_ready(self, task: int) -> bool:
        return bool(self.ready_mask >> task & 1)

    def ready_tasks(self) -> list[int]:
        """Indices of ready tasks (all predecessors placed), ascending.

        Iterates set bits directly (isolate the lowest bit, index via
        ``bit_length``) instead of shifting through every position, so
        the cost scales with the number of ready tasks, not ``n``.
        """
        out = []
        mask = self.ready_mask
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def min_avail(self) -> float:
        """``l_min``: earliest time any processor can accept a new task.

        Computed once and cached (states are immutable); the fused
        expansion path pre-seeds the cache at construction.
        """
        lmin = self._lmin
        if lmin is None:
            lmin = min(self.avail)
            self._lmin = lmin
        return lmin

    def earliest_start(self, task: int, proc: int) -> float:
        """Start time the scheduling operation would give ``task`` on ``proc``."""
        return self.problem.earliest_start(
            task, proc, self.proc_of, self.finish, self.avail[proc]
        )

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def child(self, task: int, proc: int) -> "SearchState":
        """Append one placement, producing the child vertex's state."""
        p = self.problem
        if not self.ready_mask >> task & 1:
            raise ModelError(
                f"task {p.names[task]!r} is not ready in this state"
            )
        s = p.earliest_start(task, proc, self.proc_of, self.finish, self.avail[proc])
        return self.child_placed(task, proc, s, s + p.wcet[task])

    def child_placed(
        self, task: int, proc: int, s: float, f: float
    ) -> "SearchState":
        """:meth:`child` with the start/finish times already computed.

        The fused expansion path computes every placement's times up
        front for its admission pre-check; this entry point lets it
        freeze the surviving children without repeating the scheduling
        operation (and without re-validating readiness).
        """
        p = self.problem
        bit = 1 << task
        new_mask = self.scheduled_mask | bit
        new_ready = self.ready_mask & ~bit
        for j, _ in p.succ_edges[task]:
            # A successor becomes ready when every direct predecessor is
            # now in the scheduled set.
            if not new_mask >> j & 1 and (p.pred_mask[j] & ~new_mask) == 0:
                new_ready |= 1 << j

        proc_of = list(self.proc_of)
        start = list(self.start)
        finish = list(self.finish)
        avail = list(self.avail)
        proc_of[task] = proc
        start[task] = s
        finish[task] = f
        avail[proc] = f

        lat = f - p.deadline[task]
        if lat < self.scheduled_lateness:
            lat = self.scheduled_lateness

        # Incremental Zobrist update: only processor ``proc``'s
        # accumulator changes, so the combined signature moves by the
        # difference of that one mixed term — O(1) arithmetic.
        psig = self.psig
        sigacc = self.sigacc
        if psig is not None:
            old = psig[proc]
            new = (old + placement_key(task, s)) & _MASK64
            salt = UNIFORM_SALT if p.uniform_delay is not None else proc_salt(proc)
            sigacc = (
                sigacc - mix64((old + salt) & _MASK64) + mix64((new + salt) & _MASK64)
            ) & _MASK64
            np = list(psig)
            np[proc] = new
            psig = tuple(np)

        return SearchState(
            problem=p,
            scheduled_mask=new_mask,
            ready_mask=new_ready,
            proc_of=tuple(proc_of),
            start=tuple(start),
            finish=tuple(finish),
            avail=tuple(avail),
            level=self.level + 1,
            scheduled_lateness=lat,
            last_task=task,
            last_proc=proc,
            psig=psig,
            sigacc=sigacc,
        )

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------

    def signature(self) -> int:
        """64-bit canonical signature of this state.

        Invariant under processor relabeling when the interconnect is
        uniform (``problem.uniform_delay is not None``); label-exact
        otherwise.  O(1) for states created through :meth:`child_placed`
        or :func:`root_state` (the accumulators ride along); falls back
        to :meth:`signature_from_scratch` for hand-built states.

        Equal signatures only *suggest* equal states — duplicate pruning
        must confirm with the exact canonical payload (see
        :mod:`repro.core.transposition`).
        """
        if self.sigacc is None:
            self.psig, self.sigacc = self._rebuild_accumulators()
        return self.sigacc

    def signature_from_scratch(self) -> int:
        """Recompute the signature from the placement tuples, O(n + m).

        Oracle for the incremental path (tested and micro-benchmarked
        against :meth:`signature`); also the fallback for states not
        built via the branching entry points.
        """
        return self._rebuild_accumulators()[1]

    def _rebuild_accumulators(self) -> tuple[tuple[int, ...], int]:
        p = self.problem
        acc = [0] * p.m
        for task in range(p.n):
            q = self.proc_of[task]
            if q >= 0:
                acc[q] = (acc[q] + placement_key(task, self.start[task])) & _MASK64
        uniform = p.uniform_delay is not None
        total = 0
        for q in range(p.m):
            salt = UNIFORM_SALT if uniform else proc_salt(q)
            total = (total + mix64((acc[q] + salt) & _MASK64)) & _MASK64
        return tuple(acc), total

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def canonical_key(self) -> tuple:
        """Hashable key identifying the state up to processor relabeling.

        Identical processors make states that differ only by a processor
        permutation equivalent; the key relabels processors in order of
        first use (by task index).  Only sound for uniform interconnects
        (shared bus, fully connected) — callers must check
        ``problem.uniform_delay``.
        """
        relabel: dict[int, int] = {}
        canon = []
        for i in range(self.problem.n):
            q = self.proc_of[i]
            if q < 0:
                canon.append(-1)
            else:
                if q not in relabel:
                    relabel[q] = len(relabel)
                canon.append(relabel[q])
        return (self.scheduled_mask, tuple(canon), self.start)

    def to_schedule(self):
        """Materialize an explicit :class:`~repro.model.schedule.Schedule`."""
        return self.problem.make_schedule(self.proc_of, self.start)

    def __repr__(self) -> str:
        return (
            f"SearchState(level={self.level}/{self.problem.n}, "
            f"lat={self.scheduled_lateness:g})"
        )


def root_state(problem: CompiledProblem) -> SearchState:
    """The root vertex's state: an empty schedule, input tasks ready."""
    ready = 0
    for i in problem.inputs:
        ready |= 1 << i
    uniform = problem.uniform_delay is not None
    sigacc = 0
    for q in range(problem.m):
        salt = UNIFORM_SALT if uniform else proc_salt(q)
        sigacc = (sigacc + mix64(salt)) & _MASK64
    return SearchState(
        problem=problem,
        scheduled_mask=0,
        ready_mask=ready,
        proc_of=(-1,) * problem.n,
        start=(0.0,) * problem.n,
        finish=(0.0,) * problem.n,
        avail=(0.0,) * problem.m,
        level=0,
        scheduled_lateness=_NEG_INF,
        psig=(0,) * problem.m,
        sigacc=sigacc,
    )


# ---------------------------------------------------------------------------
# Allocation-ordered (duplicate-free) states
# ---------------------------------------------------------------------------

#: Salts for the allocation half of the AO signature (distinct from the
#: placement-key constants so allocation and placement moves can never
#: cancel each other).
_ALLOC_GOLDEN = 0xC2B2AE3D27D4EB4F
_ALLOC_FINAL = 0xA0761D6478BD642F


class AOState(SearchState):
    """State of the allocation-ordered, duplicate-free search tree.

    The tree has two phases (Orr & Sinnen, arXiv:1901.06899):

    * **allocation** — tasks are bound to processors one at a time in
      fixed task-index order; on uniform interconnects a task may only
      open the *first* unused processor, which makes every allocation a
      canonical representative of its processor-permutation class.  No
      placement happens yet: ``scheduled_mask`` stays 0 and the base
      schedule fields keep their root values.
    * **ordering** — once every task is allocated, ready tasks are
      appended to their (fixed) processor via the ordinary scheduling
      operation.  Placements on *different* processors commute (neither
      changes the other's start time), so distinct interleavings of the
      same per-processor sequences reach identical states.  A Godefroid
      sleep set picks exactly one interleaving per class: the child via
      task ``t`` puts every ready task branched before ``t`` (smaller
      index, not already asleep is equivalent under the union below) to
      sleep unless it shares ``t``'s processor, and sleeping tasks are
      never branched on.  Together the two phases make every state of
      the tree reachable by exactly one path.

    The state additionally carries ``lb_floor``, a monotone
    allocation-aware lower bound (see :meth:`_alloc_floor`).  The engine
    maxes this floor with the configured bound ``L``, giving the
    allocation phase real pruning power even though the base schedule
    fields still look like the root.
    """

    __slots__ = (
        "alloc",
        "alloc_count",
        "alloc_order",
        "sleep_mask",
        "lb_floor",
        "aproc_mask",
    )

    def __init__(
        self,
        *,
        alloc: tuple[int, ...],
        alloc_count: int,
        alloc_order: tuple[int, ...],
        sleep_mask: int,
        lb_floor: float,
        aproc_mask: tuple[int, ...],
        **base,
    ) -> None:
        super().__init__(**base)
        #: Per-task processor binding (-1 while unallocated).
        self.alloc = alloc
        #: Number of tasks bound so far; the allocation phase binds task
        #: ``alloc_order[alloc_count]`` next, and the ordering phase
        #: begins once all ``n`` are bound.
        self.alloc_count = alloc_count
        #: The fixed (topological) task order allocations follow; shared
        #: across the whole tree.
        self.alloc_order = alloc_order
        #: Ready tasks the sleep-set rule forbids branching on here.
        self.sleep_mask = sleep_mask
        self.lb_floor = lb_floor
        #: Per-processor bitmask of allocated tasks.
        self.aproc_mask = aproc_mask

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def allocation_complete(self) -> bool:
        return self.alloc_count == self.problem.n

    def used_processors(self) -> int:
        """Processors holding at least one allocated task."""
        return sum(1 for msk in self.aproc_mask if msk)

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def child(self, task: int, proc: int) -> "AOState":
        """One move of the two-phase tree (dispatches on the phase)."""
        p = self.problem
        if self.alloc_count < p.n:
            expected = self.alloc_order[self.alloc_count]
            if task != expected:
                raise ModelError(
                    f"allocation order is fixed: task "
                    f"{p.names[expected]!r} must be allocated "
                    f"next, not {p.names[task]!r}"
                )
            return self.allocate(proc)
        if proc != self.alloc[task]:
            raise ModelError(
                f"task {p.names[task]!r} is allocated to processor "
                f"{self.alloc[task]}, cannot place it on {proc}"
            )
        if self.sleep_mask >> task & 1:
            raise ModelError(
                f"task {p.names[task]!r} is asleep here: placing it now "
                f"would re-generate a state reachable on the canonical "
                f"path"
            )
        return SearchState.child(self, task, proc)

    def allocate(self, proc: int) -> "AOState":
        """Bind the next task (``alloc_order[alloc_count]``) to ``proc``."""
        p = self.problem
        if self.alloc_count >= p.n:
            raise ModelError("allocation phase already complete")
        task = self.alloc_order[self.alloc_count]
        if not 0 <= proc < p.m:
            raise ModelError(f"processor {proc} out of range")
        if p.uniform_delay is not None and proc > self.used_processors():
            raise ModelError(
                f"non-canonical allocation: processor {proc} skipped an "
                f"unused processor (uniform interconnect)"
            )
        alloc = list(self.alloc)
        alloc[task] = proc
        aproc_mask = list(self.aproc_mask)
        aproc_mask[proc] |= 1 << task
        floor = self._alloc_floor(alloc, aproc_mask)
        if floor < self.lb_floor:
            floor = self.lb_floor
        return AOState(
            alloc=tuple(alloc),
            alloc_count=self.alloc_count + 1,
            alloc_order=self.alloc_order,
            sleep_mask=0,
            lb_floor=floor,
            aproc_mask=tuple(aproc_mask),
            problem=p,
            scheduled_mask=self.scheduled_mask,
            ready_mask=self.ready_mask,
            proc_of=self.proc_of,
            start=self.start,
            finish=self.finish,
            avail=self.avail,
            level=self.level + 1,
            scheduled_lateness=self.scheduled_lateness,
            last_task=task,
            last_proc=proc,
            psig=self.psig,
            sigacc=self.sigacc,
        )

    def _alloc_floor(self, alloc: list[int], aproc_mask: list[int]) -> float:
        """Allocation-aware max-lateness lower bound, two relaxations.

        * **Allocated critical path** — an edge whose endpoints are bound
          to *different* processors must pay its full message delay in
          any completion; every other edge (same processor, or either
          endpoint unbound) is relaxed to zero comm.  The relaxed finish
          time of each task therefore lower-bounds its real finish, so
          ``fin[i] - deadline[i]`` lower-bounds the max lateness.
        * **Per-processor sequencing** — the tasks bound to ``q`` run
          serially there.  Sorted by relaxed earliest start, for every
          suffix of the group the last-finishing suffix task completes no
          earlier than the suffix's earliest start plus its total WCET,
          and its deadline is at most the suffix max.

        Both terms only grow as bindings are added (the caller maxes with
        the parent floor), so the floor is monotone down every path.
        """
        p = self.problem
        arrival = p.arrival
        wcet = p.wcet
        deadline = p.deadline
        delay = p.delay
        est = [0.0] * p.n
        floor = _NEG_INF
        for i in p.topo:
            e = arrival[i]
            qi = alloc[i]
            for j, size in p.pred_edges[i]:
                r = est[j] + wcet[j]
                qj = alloc[j]
                if qi >= 0 and qj >= 0 and qi != qj:
                    r += size * delay[qj][qi]
                if r > e:
                    e = r
            est[i] = e
            lat = e + wcet[i] - deadline[i]
            if lat > floor:
                floor = lat
        for msk in aproc_mask:
            if msk == 0 or msk & (msk - 1) == 0:
                continue  # singleton groups are covered by the path term
            group = []
            while msk:
                low = msk & -msk
                t = low.bit_length() - 1
                group.append((est[t], wcet[t], deadline[t]))
                msk ^= low
            group.sort()
            load = 0.0
            maxdl = _NEG_INF
            for e, w, d in reversed(group):
                load += w
                if d > maxdl:
                    maxdl = d
                lat = e + load - maxdl
                if lat > floor:
                    floor = lat
        return floor

    def ordering_child_is_live(self, task: int, proc: int) -> bool:
        """Whether the ordering-phase child via ``task`` can ever progress.

        A child whose entire ready set is asleep is a guaranteed dead end
        (its completions are reached along the canonical interleaving
        through some sibling instead), so the branching rule skips
        generating it.  Goal children are always live.
        """
        p = self.problem
        bit = 1 << task
        new_mask = self.scheduled_mask | bit
        if new_mask == p.all_mask:
            return True
        new_ready = self.ready_mask & ~bit
        for j, _ in p.succ_edges[task]:
            if not new_mask >> j & 1 and (p.pred_mask[j] & ~new_mask) == 0:
                new_ready |= 1 << j
        sleep = (
            self.sleep_mask | (self.ready_mask & (bit - 1))
        ) & ~self.aproc_mask[proc]
        return bool(new_ready & ~sleep)

    def child_placed(self, task: int, proc: int, s: float, f: float) -> "AOState":
        if self.alloc_count < self.problem.n:
            raise ModelError(
                "allocation phase incomplete: ordering moves not yet legal"
            )
        base = SearchState.child_placed(self, task, proc, s, f)
        bit = 1 << task
        # Sleep-set update: tasks branched before ``task`` (smaller index
        # among the parent's ready set) join the inherited sleep set;
        # tasks sharing the placed processor are dependent moves and wake
        # up (the placement moved their start time), including ``task``.
        sleep = (
            self.sleep_mask | (self.ready_mask & (bit - 1))
        ) & ~self.aproc_mask[proc]
        return AOState(
            alloc=self.alloc,
            alloc_count=self.alloc_count,
            alloc_order=self.alloc_order,
            sleep_mask=sleep,
            lb_floor=self.lb_floor,
            aproc_mask=self.aproc_mask,
            problem=base.problem,
            scheduled_mask=base.scheduled_mask,
            ready_mask=base.ready_mask,
            proc_of=base.proc_of,
            start=base.start,
            finish=base.finish,
            avail=base.avail,
            level=base.level,
            scheduled_lateness=base.scheduled_lateness,
            last_task=base.last_task,
            last_proc=base.last_proc,
            lmin=base._lmin,
            psig=base.psig,
            sigacc=base.sigacc,
        )

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------

    def _alloc_sig(self) -> int:
        """Commutative hash of the allocation prefix.

        The prefix is already canonical (processors are opened in task-
        index order on uniform interconnects), so hashing the literal
        (task, processor) pairs is relabel-invariant by construction.
        """
        acc = 0
        for t, q in enumerate(self.alloc):
            if q >= 0:
                acc = (
                    acc + mix64(((t + 1) * _ALLOC_GOLDEN) ^ (q + 1))
                ) & _MASK64
        return mix64(acc ^ _ALLOC_FINAL)

    def signature(self) -> int:
        """Base placement signature with the allocation prefix folded in.

        Distinct allocation prefixes would otherwise collapse onto the
        root's placement signature (nothing is placed during the
        allocation phase), breaking the one-signature-per-state property
        this branching rule exists to provide.
        """
        return (SearchState.signature(self) + self._alloc_sig()) & _MASK64

    def signature_from_scratch(self) -> int:
        return (
            SearchState.signature_from_scratch(self) + self._alloc_sig()
        ) & _MASK64

    def canonical_key(self) -> tuple:
        return (
            SearchState.canonical_key(self),
            self.alloc,
            self.alloc_count,
        )

    def __repr__(self) -> str:
        n = self.problem.n
        if self.alloc_count < n:
            return f"AOState(alloc={self.alloc_count}/{n})"
        return (
            f"AOState(level={self.level - n}/{n}, "
            f"lat={self.scheduled_lateness:g})"
        )


def ao_root_state(problem: CompiledProblem) -> AOState:
    """Root of the allocation-ordered tree: nothing allocated or placed.

    Allocations follow the problem's topological order so the partial
    allocated-critical-path floor sees prefix-closed bindings (every
    bound task's predecessors are already bound, letting cross-processor
    comm terms bite as early as possible).
    """
    base = root_state(problem)
    return AOState(
        alloc=(-1,) * problem.n,
        alloc_count=0,
        alloc_order=tuple(problem.topo),
        sleep_mask=0,
        lb_floor=_NEG_INF,
        aproc_mask=(0,) * problem.m,
        problem=problem,
        scheduled_mask=base.scheduled_mask,
        ready_mask=base.ready_mask,
        proc_of=base.proc_of,
        start=base.start,
        finish=base.finish,
        avail=base.avail,
        level=0,
        scheduled_lateness=_NEG_INF,
        psig=base.psig,
        sigacc=base.sigacc,
    )
