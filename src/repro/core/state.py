"""Immutable partial-schedule states for the search tree.

Each vertex of the branch-and-bound search tree owns a
:class:`SearchState`: one specific task-to-processor assignment and
schedule ordering prefix.  States are immutable; branching creates a
child state by appending one (task, processor) placement via the
Section 4.3 scheduling operation.

Representation (hot path — flat tuples and bitmasks, per the HPC guides):

* ``scheduled_mask`` / ``ready_mask`` — bitmask integers over task indices;
* ``proc_of`` / ``start`` / ``finish`` — per-task placement tuples
  (``proc_of[i] == -1`` when unscheduled);
* ``avail`` — per-processor finish time of the last appended task;
* ``scheduled_lateness`` — running max lateness of the placed tasks,
  maintained incrementally.

Creating a child is O(deg + n) dominated by the small tuple copies
(n <= 16 in the paper's workloads).
"""

from __future__ import annotations

from ..errors import ModelError
from ..model.compile import CompiledProblem

__all__ = ["SearchState", "root_state"]

_NEG_INF = float("-inf")


class SearchState(object):
    """One partial (or complete) schedule: a search-tree vertex's payload."""

    __slots__ = (
        "problem",
        "scheduled_mask",
        "ready_mask",
        "proc_of",
        "start",
        "finish",
        "avail",
        "level",
        "scheduled_lateness",
        "last_task",
        "last_proc",
        "_lmin",
    )

    def __init__(
        self,
        problem: CompiledProblem,
        scheduled_mask: int,
        ready_mask: int,
        proc_of: tuple[int, ...],
        start: tuple[float, ...],
        finish: tuple[float, ...],
        avail: tuple[float, ...],
        level: int,
        scheduled_lateness: float,
        last_task: int = -1,
        last_proc: int = -1,
        lmin: float | None = None,
    ) -> None:
        self.problem = problem
        self.scheduled_mask = scheduled_mask
        self.ready_mask = ready_mask
        self.proc_of = proc_of
        self.start = start
        self.finish = finish
        self.avail = avail
        self.level = level
        self.scheduled_lateness = scheduled_lateness
        self.last_task = last_task
        self.last_proc = last_proc
        self._lmin = lmin

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def is_goal(self) -> bool:
        """All tasks placed — the vertex is a goal vertex."""
        return self.scheduled_mask == self.problem.all_mask

    def is_scheduled(self, task: int) -> bool:
        return bool(self.scheduled_mask >> task & 1)

    def is_ready(self, task: int) -> bool:
        return bool(self.ready_mask >> task & 1)

    def ready_tasks(self) -> list[int]:
        """Indices of ready tasks (all predecessors placed), ascending.

        Iterates set bits directly (isolate the lowest bit, index via
        ``bit_length``) instead of shifting through every position, so
        the cost scales with the number of ready tasks, not ``n``.
        """
        out = []
        mask = self.ready_mask
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def min_avail(self) -> float:
        """``l_min``: earliest time any processor can accept a new task.

        Computed once and cached (states are immutable); the fused
        expansion path pre-seeds the cache at construction.
        """
        lmin = self._lmin
        if lmin is None:
            lmin = min(self.avail)
            self._lmin = lmin
        return lmin

    def earliest_start(self, task: int, proc: int) -> float:
        """Start time the scheduling operation would give ``task`` on ``proc``."""
        return self.problem.earliest_start(
            task, proc, self.proc_of, self.finish, self.avail[proc]
        )

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def child(self, task: int, proc: int) -> "SearchState":
        """Append one placement, producing the child vertex's state."""
        p = self.problem
        if not self.ready_mask >> task & 1:
            raise ModelError(
                f"task {p.names[task]!r} is not ready in this state"
            )
        s = p.earliest_start(task, proc, self.proc_of, self.finish, self.avail[proc])
        return self.child_placed(task, proc, s, s + p.wcet[task])

    def child_placed(
        self, task: int, proc: int, s: float, f: float
    ) -> "SearchState":
        """:meth:`child` with the start/finish times already computed.

        The fused expansion path computes every placement's times up
        front for its admission pre-check; this entry point lets it
        freeze the surviving children without repeating the scheduling
        operation (and without re-validating readiness).
        """
        p = self.problem
        bit = 1 << task
        new_mask = self.scheduled_mask | bit
        new_ready = self.ready_mask & ~bit
        for j, _ in p.succ_edges[task]:
            # A successor becomes ready when every direct predecessor is
            # now in the scheduled set.
            if not new_mask >> j & 1 and (p.pred_mask[j] & ~new_mask) == 0:
                new_ready |= 1 << j

        proc_of = list(self.proc_of)
        start = list(self.start)
        finish = list(self.finish)
        avail = list(self.avail)
        proc_of[task] = proc
        start[task] = s
        finish[task] = f
        avail[proc] = f

        lat = f - p.deadline[task]
        if lat < self.scheduled_lateness:
            lat = self.scheduled_lateness

        return SearchState(
            problem=p,
            scheduled_mask=new_mask,
            ready_mask=new_ready,
            proc_of=tuple(proc_of),
            start=tuple(start),
            finish=tuple(finish),
            avail=tuple(avail),
            level=self.level + 1,
            scheduled_lateness=lat,
            last_task=task,
            last_proc=proc,
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def canonical_key(self) -> tuple:
        """Hashable key identifying the state up to processor relabeling.

        Identical processors make states that differ only by a processor
        permutation equivalent; the key relabels processors in order of
        first use (by task index).  Only sound for uniform interconnects
        (shared bus, fully connected) — callers must check
        ``problem.uniform_delay``.
        """
        relabel: dict[int, int] = {}
        canon = []
        for i in range(self.problem.n):
            q = self.proc_of[i]
            if q < 0:
                canon.append(-1)
            else:
                if q not in relabel:
                    relabel[q] = len(relabel)
                canon.append(relabel[q])
        return (self.scheduled_mask, tuple(canon), self.start)

    def to_schedule(self):
        """Materialize an explicit :class:`~repro.model.schedule.Schedule`."""
        return self.problem.make_schedule(self.proc_of, self.start)

    def __repr__(self) -> str:
        return (
            f"SearchState(level={self.level}/{self.problem.n}, "
            f"lat={self.scheduled_lateness:g})"
        )


def root_state(problem: CompiledProblem) -> SearchState:
    """The root vertex's state: an empty schedule, input tasks ready."""
    ready = 0
    for i in problem.inputs:
        ready |= 1 << i
    return SearchState(
        problem=problem,
        scheduled_mask=0,
        ready_mask=ready,
        proc_of=(-1,) * problem.n,
        start=(0.0,) * problem.n,
        finish=(0.0,) * problem.n,
        avail=(0.0,) * problem.m,
        level=0,
        scheduled_lateness=_NEG_INF,
    )
