"""Characteristic functions ``F`` (optional; OFF by default).

The characteristic function eliminates partial solutions that cannot
lead to a *valid* complete solution.  The paper leaves ``F`` unused
(Section 3): under lateness minimization every partial schedule extends
to a complete one, so validity-based elimination only applies when the
user wants a schedule meeting all deadlines rather than the minimum-
lateness one.

:class:`LatenessTargetFilter` prunes any vertex whose lower bound
already exceeds a target lateness (default 0 = "all deadlines met").
With it enabled the B&B becomes a feasibility search: it terminates as
soon as the incumbent cost is at or below the target, and it proves
infeasibility when the search space empties without one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .state import SearchState

__all__ = [
    "CharacteristicFunction",
    "NoFilter",
    "LatenessTargetFilter",
    "CHARACTERISTIC_FUNCTIONS",
]


class CharacteristicFunction(ABC):
    """Strategy interface for the characteristic function ``F``."""

    name: str = "?"

    #: True when :meth:`admits` accepts every vertex (the paper's
    #: default).  The fused expansion path may then discard doomed
    #: children before the function would have seen them without
    #: changing any observable pruning behaviour.
    admits_all: bool = False

    @abstractmethod
    def admits(self, state: SearchState, lower_bound: float) -> bool:
        """Whether the vertex may still lead to an acceptable solution."""

    #: Target the incumbent must reach for the search to stop early
    #: (None = run to exhaustion as usual).
    early_stop_cost: float | None = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NoFilter(CharacteristicFunction):
    """The paper's configuration: no characteristic function."""

    name = "none"
    admits_all = True

    def admits(self, state: SearchState, lower_bound: float) -> bool:
        return True


class LatenessTargetFilter(CharacteristicFunction):
    """Admit only vertices that can still meet a lateness target."""

    name = "lateness-target"

    def __init__(self, target: float = 0.0) -> None:
        self.target = target
        self.early_stop_cost = target

    def admits(self, state: SearchState, lower_bound: float) -> bool:
        return lower_bound <= self.target

    def __repr__(self) -> str:
        return f"LatenessTargetFilter(target={self.target})"


CHARACTERISTIC_FUNCTIONS: dict[str, type[CharacteristicFunction]] = {
    NoFilter.name: NoFilter,
    LatenessTargetFilter.name: LatenessTargetFilter,
}
