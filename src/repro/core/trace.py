"""Search tracing: per-event logs and anytime convergence profiles.

A :class:`TraceRecorder` can be attached to :class:`~repro.core.engine.BranchAndBound`
to record what the search did, turn by turn:

* one :class:`ExploreEvent` per branched vertex (level, bound, active-set
  size at selection time);
* one :class:`IncumbentEvent` per incumbent improvement (cost and the
  generated-vertex count at which it happened).

The incumbent series is the search's *anytime profile* — how quickly the
B&B converges toward the optimum — which is what distinguishes LIFO's
dive-then-prune behaviour from LLB's breadth-first wade even when both
eventually explore similar vertex counts.

Recording costs one append per explored vertex; leave the recorder off
(the default) for benchmark runs.  The recorder keeps events in memory
(bounded by ``max_explore_events``); for long solves prefer streaming
events to disk with a :class:`repro.obs.JsonlSink` attached via
:class:`repro.obs.Observability`, which samples and buffers instead of
accumulating.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

__all__ = ["ExploreEvent", "IncumbentEvent", "TraceRecorder"]


@dataclass(frozen=True, slots=True)
class ExploreEvent:
    """One vertex selected and branched."""

    #: Running count of explored vertices (1-based).
    step: int
    #: Generated-vertex count when this vertex was selected.
    generated: int
    level: int
    lower_bound: float
    active_size: int


@dataclass(frozen=True, slots=True)
class IncumbentEvent:
    """The incumbent improved."""

    #: Generated-vertex count at the moment of improvement.
    generated: int
    cost: float


class TraceRecorder:
    """Collects search events; attach via ``BranchAndBound(params, trace=...)``.

    ``max_explore_events`` bounds the explore log (the incumbent log is
    always complete — it is tiny); after the cap only incumbent events
    are recorded, so long searches stay traceable without unbounded
    memory.
    """

    def __init__(self, max_explore_events: int = 1_000_000) -> None:
        self.max_explore_events = max_explore_events
        self.explored: list[ExploreEvent] = []
        self.incumbents: list[IncumbentEvent] = []
        self.initial_bound: float | None = None

    # -- hooks called by the engine -------------------------------------

    def on_start(self, initial_bound: float) -> None:
        self.initial_bound = initial_bound

    def on_explore(
        self,
        step: int,
        generated: int,
        level: int,
        lower_bound: float,
        active_size: int,
    ) -> None:
        if len(self.explored) < self.max_explore_events:
            self.explored.append(
                ExploreEvent(step, generated, level, lower_bound, active_size)
            )

    def on_incumbent(self, generated: int, cost: float) -> None:
        self.incumbents.append(IncumbentEvent(generated, cost))

    # -- analysis --------------------------------------------------------

    def anytime_profile(self) -> list[tuple[int, float]]:
        """(generated vertices, best cost so far) steps, starting at U."""
        profile: list[tuple[int, float]] = []
        if self.initial_bound is not None:
            profile.append((0, self.initial_bound))
        profile.extend((e.generated, e.cost) for e in self.incumbents)
        return profile

    def cost_at(self, generated: int) -> float:
        """Best incumbent cost once `generated` vertices had been created."""
        best = float("inf") if self.initial_bound is None else self.initial_bound
        for e in self.incumbents:
            if e.generated <= generated:
                best = e.cost
            else:
                break
        return best

    def max_level_reached(self) -> int:
        return max((e.level for e in self.explored), default=0)

    def mean_active_size(self) -> float:
        if not self.explored:
            return 0.0
        return sum(e.active_size for e in self.explored) / len(self.explored)

    def write_csv(self, path_or_file) -> int:
        """Stream the explore log as CSV to a path or open text file.

        Writes row by row, so a million-event trace never materializes a
        second copy of itself in memory (unlike :meth:`to_csv`).  Returns
        the number of data rows written.
        """
        if hasattr(path_or_file, "write"):
            return self._write_csv(path_or_file)
        with open(path_or_file, "w") as fh:
            return self._write_csv(fh)

    def _write_csv(self, fh) -> int:
        fh.write("step,generated,level,lower_bound,active_size\n")
        for e in self.explored:
            fh.write(
                f"{e.step},{e.generated},{e.level},{e.lower_bound},"
                f"{e.active_size}\n"
            )
        return len(self.explored)

    def to_csv(self) -> str:
        """Explore log as one CSV string (small traces; prefer
        :meth:`write_csv` for anything large)."""
        out = io.StringIO()
        self._write_csv(out)
        return out.getvalue()

    def __len__(self) -> int:
        return len(self.explored)

    def __repr__(self) -> str:
        return (
            f"TraceRecorder(explored={len(self.explored)}, "
            f"incumbents={len(self.incumbents)})"
        )
