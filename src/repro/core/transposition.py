"""Duplicate-state detection: canonical signatures + transposition tables.

The paper's B&B explores one vertex per distinct placement *sequence*,
so the same partial schedule reached through different append orders —
or through processor relabelings on a uniform interconnect — is
re-expanded from scratch.  Duplicate-free search (Orr & Sinnen, arXiv
1901.06899) removes exactly that redundancy, and a memory-bounded,
well-engineered duplicate store is what lets it scale (Akram, Maas &
Sanders, arXiv 2405.15371).  This module supplies both halves:

Canonical identity
    Two states are *equivalent* when they schedule the same task set
    with the same per-task start times and the same task-to-processor
    assignment, compared up to processor relabeling when the
    interconnect is uniform (``problem.uniform_delay is not None``) and
    exactly otherwise.  Equivalent states admit identical futures under
    the append-only scheduling operation, and their lower bounds agree,
    so only the first may ever be expanded.  Identity is carried two
    ways: a 64-bit Zobrist-style signature maintained incrementally on
    every :meth:`~repro.core.state.SearchState.child_placed` (the
    candidate filter) and a fixed-size packed payload
    (:class:`PayloadCodec`) used for exact verification — equal hashes
    alone never justify a prune.

Soundness of duplicate pruning
    When a probe reports "seen before", the earlier instance was either
    expanded, recorded in the active set, or pruned by a rule that is
    itself sound at a threshold no looser than the current one (the
    elimination threshold only tightens as the search proceeds, and
    equivalent states have equal bounds).  In every case the duplicate's
    subtree is already covered, so discarding it cannot change the
    optimal cost — only the number of searched vertices.  Eviction
    merely *forgets* states (a re-encountered forgotten state is
    re-explored, never wrongly pruned), so the memory bound is safe at
    any size.

Table engineering
    :class:`TranspositionTable` is an 8-way set-associative,
    open-addressing store sized from a byte budget.  Entries are
    two-level — a 64-bit hash word plus the packed payload slot — and a
    full bucket is resolved by one of three replacement policies:
    ``always`` (deterministic pseudo-random way), ``depth`` (prefer to
    keep shallow entries, whose subtrees are larger; reject insertions
    deeper than everything resident) and ``clock`` (second-chance sweep
    over per-entry reference bits, an LRU approximation).

Sharing across processes
    :class:`SharedTranspositionTable` keeps the same geometry in a
    ``multiprocessing.shared_memory`` segment so PR3's throughput-mode
    shards stop re-exploring each other's states.  Writers serialize on
    a striped lock (one per bucket); readers are lock-free under a
    per-record seqlock.  **Racy-read / safe-prune contract**: a prune is
    issued only from a payload read whose seqlock version was even and
    unchanged across the read (a consistent snapshot) and whose bytes
    equal the probe's exact payload; any torn or ambiguous read falls
    back to the striped lock, where a consistent re-scan decides.  A
    racing insert can thus at worst be *missed* (the state is explored
    twice — wasteful, never wrong).
"""

from __future__ import annotations

import struct
from array import array

from ..errors import ConfigurationError
from .dominance import DOMINANCE_RULES, DominanceChecker, DominanceRule
from .state import (
    UNIFORM_SALT,
    SearchState,
    mix64,
    placement_key,
    proc_salt,
)

__all__ = [
    "PayloadCodec",
    "TranspositionTable",
    "SharedTranspositionTable",
    "TranspositionDominance",
    "child_signature",
    "find_transposition",
    "TT_POLICIES",
]

_MASK64 = (1 << 64) - 1

#: Bucket width of the set-associative tables (a power of two).
WAYS = 8

TT_POLICIES = ("always", "depth", "clock")


def child_signature(parent: SearchState, task: int, proc: int, s: float) -> int:
    """Signature of ``parent + (task on proc at s)`` without the child.

    Performs the same O(1) accumulator update
    :meth:`SearchState.child_placed` would, so the result is bit-equal
    to ``parent.child_placed(task, proc, s, f).signature()``.
    """
    psig = parent.psig
    if psig is None:
        parent.signature()  # rebuilds and caches the accumulators
        psig = parent.psig
    p = parent.problem
    old = psig[proc]
    new = (old + placement_key(task, s)) & _MASK64
    salt = UNIFORM_SALT if p.uniform_delay is not None else proc_salt(proc)
    return (
        parent.sigacc - mix64((old + salt) & _MASK64) + mix64((new + salt) & _MASK64)
    ) & _MASK64


class PayloadCodec:
    """Fixed-size exact encoding of a state's canonical identity.

    Layout: ``scheduled_mask`` (little-endian, ``ceil(n/8)`` bytes) +
    one byte per task (canonical processor + 1; 0 = unscheduled) + the
    full per-task start tuple (``n`` little-endian doubles; unscheduled
    tasks hold 0.0 by construction, so equal states always encode
    byte-equal).  On uniform interconnects processors are relabeled in
    order of first use by task index — the same normalization as
    :meth:`SearchState.canonical_key` — making relabel-equivalent states
    encode identically.
    """

    __slots__ = ("n", "m", "uniform", "mask_bytes", "payload_len", "_dpack")

    def __init__(self, n: int, m: int, uniform: bool) -> None:
        if m > 254:
            raise ConfigurationError(
                "transposition payloads encode processors in one byte "
                f"(m <= 254); got m={m}"
            )
        self.n = n
        self.m = m
        self.uniform = uniform
        self.mask_bytes = (n + 7) // 8
        self._dpack = struct.Struct(f"<{n}d")
        self.payload_len = self.mask_bytes + n + 8 * n

    @classmethod
    def for_problem(cls, problem) -> "PayloadCodec":
        return cls(problem.n, problem.m, problem.uniform_delay is not None)

    def matches_problem(self, problem) -> bool:
        return (
            self.n == problem.n
            and self.m == problem.m
            and self.uniform == (problem.uniform_delay is not None)
        )

    def pack(
        self,
        scheduled_mask: int,
        proc_of: tuple[int, ...] | list[int],
        start: tuple[float, ...] | list[float],
    ) -> bytes:
        if self.uniform:
            relabel: dict[int, int] = {}
            procs = bytearray(self.n)
            for i, q in enumerate(proc_of):
                if q >= 0:
                    r = relabel.get(q)
                    if r is None:
                        r = relabel[q] = len(relabel)
                    procs[i] = r + 1
        else:
            procs = bytes((q + 1 if q >= 0 else 0) for q in proc_of)
        return (
            scheduled_mask.to_bytes(self.mask_bytes, "little")
            + bytes(procs)
            + self._dpack.pack(*start)
        )

    def pack_state(self, state: SearchState) -> bytes:
        return self.pack(state.scheduled_mask, state.proc_of, state.start)

    def pack_child(
        self, parent: SearchState, task: int, proc: int, s: float
    ) -> bytes:
        """Payload of ``parent + (task on proc at s)`` without the child.

        Byte-equal to ``pack_state(parent.child_placed(task, proc, s,
        f))`` — the appended placement is the only difference between
        the two states' mask/assignment/start tuples.
        """
        proc_of = list(parent.proc_of)
        start = list(parent.start)
        proc_of[task] = proc
        start[task] = s
        return self.pack(parent.scheduled_mask | (1 << task), proc_of, start)


def _geometry(table_bytes: int, entry_cost: int) -> int:
    """Number of buckets (a power of two) fitting the byte budget.

    At least one bucket is always allocated — the table is usable at any
    budget, just tiny — so the true floor is ``WAYS * entry_cost`` bytes.
    """
    slots_budget = max(WAYS, table_bytes // max(1, entry_cost))
    nbuckets = 1
    while nbuckets * 2 * WAYS <= slots_budget:
        nbuckets *= 2
    return nbuckets


def _check_policy(policy: str) -> str:
    if policy not in TT_POLICIES:
        raise ConfigurationError(
            f"unknown transposition replacement policy {policy!r}; "
            f"choose from {TT_POLICIES}"
        )
    return policy


class _CountersMixin:
    """Process-local probe counters shared by both table variants."""

    def _init_counters(self) -> None:
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.rejects = 0
        self.collisions = 0
        self.filled = 0

    def counters_dict(self) -> dict[str, int]:
        return {
            "tt_hits": self.hits,
            "tt_misses": self.misses,
            "tt_inserts": self.inserts,
            "tt_evictions": self.evictions,
            "tt_rejects": self.rejects,
            "tt_collisions": self.collisions,
            "tt_filled": self.filled,
            "tt_capacity": self.slots,
        }


class TranspositionTable(_CountersMixin):
    """In-process memory-bounded duplicate store (8-way set-associative).

    ``probe(h, depth, payload)`` answers "was an exactly-equal state
    seen before?" and records the state when not.  ``payload`` is a
    zero-argument callable building the packed canonical payload; it is
    invoked at most once, and only when a hash matched (verification) or
    an insert happens.
    """

    #: Per-entry byte estimate for capacity sizing: hash word (array
    #: slot) + depth byte + clock byte + payload-list pointer + CPython
    #: bytes-object header + the payload itself.
    _PTR_AND_HEADER = 8 + 33

    def __init__(
        self,
        table_bytes: int,
        codec: PayloadCodec,
        policy: str = "depth",
    ) -> None:
        self.codec = codec
        self.policy = _check_policy(policy)
        self.table_bytes = table_bytes
        self.entry_cost = 8 + 1 + 1 + self._PTR_AND_HEADER + codec.payload_len
        self.nbuckets = _geometry(table_bytes, self.entry_cost)
        self.slots = self.nbuckets * WAYS
        self._hash = array("Q", bytes(8 * self.slots))
        self._depth = bytearray(self.slots)
        self._ref = bytearray(self.slots)
        self._payload: list[bytes | None] = [None] * self.slots
        self._init_counters()

    @property
    def bytes_estimate(self) -> int:
        """Upper estimate of the fully-filled table's memory footprint."""
        return self.slots * self.entry_cost

    def probe(self, h: int, depth: int, payload) -> bool:
        h &= _MASK64
        if h == 0:
            h = 1  # 0 is the empty-slot sentinel
        base = (h & (self.nbuckets - 1)) * WAYS
        harr = self._hash
        pays = self._payload
        pay = None
        empty = -1
        for i in range(base, base + WAYS):
            eh = harr[i]
            if eh == 0:
                empty = i
                break
            if eh == h:
                if pay is None:
                    pay = payload()
                if pays[i] == pay:
                    self.hits += 1
                    self._ref[i] = 1
                    return True
                self.collisions += 1
        self.misses += 1
        if pay is None:
            pay = payload()
        if depth > 255:
            depth = 255
        if empty >= 0:
            harr[empty] = h
            pays[empty] = pay
            self._depth[empty] = depth
            self._ref[empty] = 0
            self.filled += 1
            self.inserts += 1
            return False
        victim = self._select_victim(base, h, depth)
        if victim < 0:
            self.rejects += 1
            return False
        harr[victim] = h
        pays[victim] = pay
        self._depth[victim] = depth
        self._ref[victim] = 0
        self.inserts += 1
        self.evictions += 1
        return False

    def _select_victim(self, base: int, h: int, depth: int) -> int:
        policy = self.policy
        if policy == "always":
            return base + (mix64(h ^ 0xA5A5A5A5A5A5A5A5) & (WAYS - 1))
        if policy == "depth":
            darr = self._depth
            worst = base
            worst_depth = darr[base]
            for i in range(base + 1, base + WAYS):
                if darr[i] > worst_depth:
                    worst_depth = darr[i]
                    worst = i
            # Keep shallow entries (bigger subtrees behind them); a
            # newcomer deeper than everything resident is not stored.
            return worst if depth <= worst_depth else -1
        # clock: second-chance sweep from a hash-derived start way.
        ref = self._ref
        s0 = mix64(h) & (WAYS - 1)
        for k in range(WAYS):
            i = base + ((s0 + k) & (WAYS - 1))
            if ref[i] == 0:
                return i
            ref[i] = 0
        return base + s0


# ---------------------------------------------------------------------------
# Shared-memory variant
# ---------------------------------------------------------------------------

#: Segment header: magic, n, m, uniform flag, bucket count, payload length.
_HEADER = struct.Struct("<8sIIIQI")
_MAGIC = b"RPTTBL01"


class SharedTranspositionTable(_CountersMixin):
    """The set-associative store in a ``multiprocessing.shared_memory``
    segment, shared by every throughput-mode shard.

    Record layout per slot: ``hash`` (8 bytes, 0 = empty), ``version``
    (4-byte seqlock word: odd while a writer is mid-update), ``depth``
    (1), ``ref`` (1, clock bit), 2 padding bytes, then the fixed-size
    payload.  All writes happen under the bucket's stripe lock and bump
    the version to odd first and back to even last; the lock-free read
    path re-checks the version around its hash + payload read and
    accepts only an even, unchanged version.  See the module docstring
    for the racy-read/safe-prune contract.

    Probe counters are process-local (each worker reports its own view);
    only the slot contents are shared.
    """

    _META = 16  # hash + version + depth + ref + padding

    def __init__(self, shm, locks, codec: PayloadCodec, policy: str) -> None:
        self.shm = shm
        self.locks = locks
        self.codec = codec
        self.policy = _check_policy(policy)
        self.record = self._META + codec.payload_len
        buf = shm.buf
        magic, n, m, uniform, nbuckets, plen = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ConfigurationError(
                "shared transposition segment has an unrecognized header"
            )
        if (n, m, bool(uniform), plen) != (
            codec.n,
            codec.m,
            codec.uniform,
            codec.payload_len,
        ):
            raise ConfigurationError(
                "shared transposition segment geometry does not match the "
                "problem being solved"
            )
        self.nbuckets = nbuckets
        self.slots = nbuckets * WAYS
        self._buf = buf
        self._init_counters()

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def create(
        cls,
        table_bytes: int,
        codec: PayloadCodec,
        policy: str = "depth",
        ctx=None,
    ) -> "SharedTranspositionTable":
        from multiprocessing import get_context, shared_memory

        record = cls._META + codec.payload_len
        nbuckets = _geometry(table_bytes, record)
        size = _HEADER.size + nbuckets * WAYS * record
        shm = shared_memory.SharedMemory(create=True, size=size)
        # POSIX shared memory is zero-initialized: every hash word reads
        # 0 (empty) and every seqlock version reads 0 (even/stable).
        _HEADER.pack_into(
            shm.buf,
            0,
            _MAGIC,
            codec.n,
            codec.m,
            int(codec.uniform),
            nbuckets,
            codec.payload_len,
        )
        ctx = ctx or get_context()
        locks = tuple(ctx.Lock() for _ in range(min(64, nbuckets)))
        table = cls(shm, locks, codec, policy)
        table._owner = True
        return table

    @classmethod
    def attach(
        cls, name: str, locks, codec: PayloadCodec, policy: str
    ) -> "SharedTranspositionTable":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        table = cls(shm, locks, codec, policy)
        table._owner = False
        return table

    def close(self, *, unlink: bool | None = None) -> None:
        # memoryview slices must be released before the segment closes.
        self._buf = None
        if unlink is None:
            unlink = getattr(self, "_owner", False)
        try:
            self.shm.close()
            if unlink:
                self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    @property
    def bytes_estimate(self) -> int:
        return _HEADER.size + self.slots * self.record

    # -- probing --------------------------------------------------------

    def probe(self, h: int, depth: int, payload) -> bool:
        h &= _MASK64
        if h == 0:
            h = 1
        bucket = h & (self.nbuckets - 1)
        base = _HEADER.size + bucket * WAYS * self.record
        buf = self._buf
        rec = self.record
        plen = self.codec.payload_len
        pay = None

        # Lock-free fast path: prune only from a seqlock-consistent
        # snapshot whose payload bytes match exactly.
        for w in range(WAYS):
            off = base + w * rec
            eh = int.from_bytes(buf[off : off + 8], "little")
            if eh == 0:
                break
            if eh != h:
                continue
            v1 = int.from_bytes(buf[off + 8 : off + 12], "little")
            if v1 & 1:
                continue  # writer mid-update; the locked path decides
            if pay is None:
                pay = payload()
            stored = bytes(buf[off + self._META : off + self._META + plen])
            v2 = int.from_bytes(buf[off + 8 : off + 12], "little")
            if v1 == v2 and stored == pay:
                self.hits += 1
                buf[off + 13] = 1  # clock ref bit; benign single-byte race
                return True

        if pay is None:
            pay = payload()
        if depth > 255:
            depth = 255
        lock = self.locks[bucket % len(self.locks)]
        with lock:
            empty = -1
            for w in range(WAYS):
                off = base + w * rec
                eh = int.from_bytes(buf[off : off + 8], "little")
                if eh == 0:
                    empty = w
                    break
                if eh == h:
                    stored = bytes(
                        buf[off + self._META : off + self._META + plen]
                    )
                    if stored == pay:
                        self.hits += 1
                        buf[off + 13] = 1
                        return True
                    self.collisions += 1
            self.misses += 1
            if empty >= 0:
                self._write_slot(base + empty * rec, h, depth, pay)
                self.filled += 1
                self.inserts += 1
                return False
            victim = self._select_victim(base, h, depth)
            if victim < 0:
                self.rejects += 1
                return False
            self._write_slot(base + victim * rec, h, depth, pay)
            self.inserts += 1
            self.evictions += 1
            return False

    def _write_slot(self, off: int, h: int, depth: int, pay: bytes) -> None:
        buf = self._buf
        ver = int.from_bytes(buf[off + 8 : off + 12], "little")
        buf[off + 8 : off + 12] = ((ver + 1) & 0xFFFFFFFF).to_bytes(4, "little")
        buf[off : off + 8] = h.to_bytes(8, "little")
        buf[off + 12] = depth
        buf[off + 13] = 0
        buf[off + self._META : off + self._META + len(pay)] = pay
        buf[off + 8 : off + 12] = ((ver + 2) & 0xFFFFFFFF).to_bytes(4, "little")

    def _select_victim(self, base: int, h: int, depth: int) -> int:
        policy = self.policy
        buf = self._buf
        rec = self.record
        if policy == "always":
            return mix64(h ^ 0xA5A5A5A5A5A5A5A5) & (WAYS - 1)
        if policy == "depth":
            worst = 0
            worst_depth = buf[base + 12]
            for w in range(1, WAYS):
                d = buf[base + w * rec + 12]
                if d > worst_depth:
                    worst_depth = d
                    worst = w
            return worst if depth <= worst_depth else -1
        s0 = mix64(h) & (WAYS - 1)
        for k in range(WAYS):
            w = (s0 + k) & (WAYS - 1)
            off = base + w * rec + 13
            if buf[off] == 0:
                return w
            buf[off] = 0
        return s0

    # -- worker plumbing ------------------------------------------------

    def handle(self) -> tuple:
        """Picklable (name, locks, codec params, policy) for initargs."""
        return (
            self.shm.name,
            self.locks,
            (self.codec.n, self.codec.m, self.codec.uniform),
            self.policy,
        )

    @classmethod
    def from_handle(cls, handle: tuple) -> "SharedTranspositionTable":
        name, locks, (n, m, uniform), policy = handle
        return cls.attach(name, locks, PayloadCodec(n, m, uniform), policy)


# ---------------------------------------------------------------------------
# Dominance-seam integration
# ---------------------------------------------------------------------------


class _TranspositionChecker(DominanceChecker):
    """Per-solve checker over a (local or shared) transposition table.

    Honours the replay-consistent observation contract:
    :meth:`probe_placement` performs bit-for-bit the same signature
    arithmetic, payload packing and table mutation as materializing the
    child and calling :meth:`is_dominated` — so the fused expansion path
    and the reference loop drive the table identically.
    """

    supports_probe = True

    def __init__(self, rule: "TranspositionDominance") -> None:
        self.rule = rule
        self.duplicate_pruned = 0
        self._table = None
        self._codec = None
        self._base: dict[str, int] = {}

    def _bind(self, problem):
        table = self.rule.table_for(problem)
        self._table = table
        self._codec = table.codec
        # Shared tables outlive solves; report per-solve deltas.
        self._base = dict(table.counters_dict())
        return table

    def is_dominated(self, state: SearchState) -> bool:
        table = self._table
        if table is None:
            table = self._bind(state.problem)
        codec = self._codec
        dup = table.probe(
            state.signature(),
            state.level,
            lambda: codec.pack_state(state),
        )
        if dup:
            self.duplicate_pruned += 1
        return dup

    def probe_placement(
        self, parent: SearchState, task: int, proc: int, s: float, f: float
    ) -> bool:
        table = self._table
        if table is None:
            table = self._bind(parent.problem)
        codec = self._codec
        dup = table.probe(
            child_signature(parent, task, proc, s),
            parent.level + 1,
            lambda: codec.pack_child(parent, task, proc, s),
        )
        if dup:
            self.duplicate_pruned += 1
        return dup

    def telemetry(self) -> dict[str, int]:
        out = {"duplicate_pruned": self.duplicate_pruned}
        table = self._table
        if table is not None:
            base = self._base
            for key, value in table.counters_dict().items():
                if key in ("tt_filled", "tt_capacity"):
                    out[key] = value
                else:
                    out[key] = value - base.get(key, 0)
        return out


class TranspositionDominance(DominanceRule):
    """Dominance rule wrapping the transposition layer.

    Plugs into ``BnBParameters.dominance`` (alone, or composed with
    :class:`~repro.core.dominance.StateDominance` via
    :class:`~repro.core.dominance.ChainedDominance`).  Each solve gets a
    fresh local :class:`TranspositionTable` sized by ``table_bytes``;
    the parallel driver's throughput mode instead binds one
    :class:`SharedTranspositionTable` via :meth:`bind_shared` so all
    shards prune against the same store.

    Runtime handles (the bound shared table, spawned checkers) do not
    survive pickling — workers re-bind after transport.
    """

    name = "transposition"

    def __init__(
        self, table_bytes: int = 16 << 20, policy: str = "depth"
    ) -> None:
        if table_bytes < 1:
            raise ConfigurationError("table_bytes must be positive")
        self.table_bytes = table_bytes
        self.policy = _check_policy(policy)
        self._shared: SharedTranspositionTable | None = None
        self._spawned: list[_TranspositionChecker] = []

    def fresh(self) -> DominanceChecker:
        checker = _TranspositionChecker(self)
        self._spawned.append(checker)
        return checker

    def bind_shared(self, table: SharedTranspositionTable | None) -> None:
        self._shared = table

    def table_for(self, problem):
        shared = self._shared
        if shared is not None:
            if not shared.codec.matches_problem(problem):
                raise ConfigurationError(
                    "bound shared transposition table was created for a "
                    "different problem geometry"
                )
            return shared
        return TranspositionTable(
            self.table_bytes, PayloadCodec.for_problem(problem), self.policy
        )

    def spawn_mark(self) -> int:
        """Marker for :meth:`telemetry_total`'s ``since`` (rules persist
        across solves; callers aggregating one solve window use this)."""
        return len(self._spawned)

    def telemetry_total(self, since: int = 0) -> dict[str, int]:
        """Counters summed over checkers this rule spawned locally."""
        merged: dict[str, int] = {}
        for checker in self._spawned[since:]:
            for k, v in checker.telemetry().items():
                if k in ("tt_filled", "tt_capacity"):
                    merged[k] = v  # snapshots, not deltas
                else:
                    merged[k] = merged.get(k, 0) + v
        return merged

    def __getstate__(self):
        return {"table_bytes": self.table_bytes, "policy": self.policy}

    def __setstate__(self, state):
        self.__init__(**state)

    def __repr__(self) -> str:
        return (
            f"TranspositionDominance(table_bytes={self.table_bytes}, "
            f"policy={self.policy!r})"
        )


DOMINANCE_RULES[TranspositionDominance.name] = TranspositionDominance


def find_transposition(rule: DominanceRule) -> TranspositionDominance | None:
    """The transposition member of a (possibly chained) dominance rule."""
    if isinstance(rule, TranspositionDominance):
        return rule
    for sub in getattr(rule, "rules", ()):  # ChainedDominance
        found = find_transposition(sub)
        if found is not None:
            return found
    return None
