"""Vertex branching rules ``B`` (Section 3.3).

The branching rule decides which (task, processor) placements become the
child vertices ``DB`` of the vertex being explored:

* ``B_BFn`` — every ready task on every processor.  The only rule that
  guarantees an optimal solution under the paper's *non-commutative*
  scheduling operation (the order tasks are handed to the scheduler
  matters, so all orders must be considered).
* ``B_BF1`` — a single task, the head of a fixed list sorted by task
  level (breadth-first), on every processor.  Approximate.
* ``B_DF`` — a single task, the head of a fixed list in depth-first
  order, on every processor.  Approximate; the cheapest rule, but it may
  delay input tasks and hence worsen lateness when application
  parallelism exceeds the machine's (Section 5.3).

With a single-task rule, every vertex at level ``k`` has scheduled
exactly the first ``k`` tasks of the fixed list, so the next task is
simply ``order[level]``.

Rules are prepared once per problem (``prepare``) and then queried per
vertex (``placements``).  ``placements`` may break processor symmetry
when asked: on a uniform interconnect, placing a task on one empty
processor is equivalent to placing it on any other, so only the first
empty processor need be expanded (sound for makespan/lateness because
processors are identical — see ``symmetry`` in
:class:`~repro.core.params.BnBParameters`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import ConfigurationError
from ..model.compile import CompiledProblem
from .state import AOState, SearchState, ao_root_state, root_state

__all__ = [
    "BranchingRule",
    "AOBranching",
    "BFnBranching",
    "BF1Branching",
    "DFBranching",
    "FixedOrderBranching",
    "BRANCHING_RULES",
]


class BranchingRule(ABC):
    """Strategy interface for the vertex branching rule ``B``."""

    name: str = "?"

    #: Whether the rule explores all schedule orderings (and hence the
    #: engine may claim optimality when BR = 0 and no resource bound
    #: truncated the search).
    guarantees_optimal: bool = False

    #: Whether the rule's tree reaches every state by exactly one path.
    #: The engine refuses to stack a dominance/duplicate layer on such a
    #: rule: duplicate detection is pointless there, and the shipped
    #: checkers key on placements only, which would unsoundly collapse
    #: distinct allocation prefixes.
    duplicate_free: bool = False

    @abstractmethod
    def prepare(self, problem: CompiledProblem) -> "PreparedBranching":
        """Bind the rule to one compiled problem."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PreparedBranching(ABC):
    """Per-problem branching state (fixed orders, processor lists)."""

    #: Whether the fused/batch expansion paths may replicate this rule.
    #: Rules whose states are not plain one-placement-per-level
    #: :class:`SearchState` trees (the allocation-ordered rule) opt out;
    #: the engine then falls back to the reference per-child loop.
    fused_compatible: bool = True

    def __init__(self, problem: CompiledProblem) -> None:
        self.problem = problem

    def make_root(self) -> SearchState:
        """The root state this rule's tree grows from."""
        return root_state(self.problem)

    @abstractmethod
    def placements(
        self, state: SearchState, break_symmetry: bool = False
    ) -> list[tuple[int, int]]:
        """The (task, processor) pairs to expand from ``state``."""

    def branch_tasks(self, state: SearchState) -> list[int]:
        """The tasks this rule branches on from ``state``.

        The fused expansion path iterates ``branch_tasks x _procs_for``
        directly, skipping the intermediate placement-tuple list that
        :meth:`placements` materializes.  The default derives the task
        list from :meth:`placements` (order-preserving) so third-party
        rules keep working; built-in rules override it.
        """
        seen: set[int] = set()
        tasks: list[int] = []
        for task, _ in self.placements(state):
            if task not in seen:
                seen.add(task)
                tasks.append(task)
        return tasks

    def _procs_for(
        self, state: SearchState, break_symmetry: bool
    ) -> list[int]:
        """Candidate processors, collapsing empty ones when symmetric."""
        m = self.problem.m
        if not break_symmetry or self.problem.uniform_delay is None:
            return list(range(m))
        procs: list[int] = []
        seen_empty = False
        avail = state.avail
        for q in range(m):
            if avail[q] == 0.0:
                if seen_empty:
                    continue
                seen_empty = True
            procs.append(q)
        return procs


class _PreparedBFn(PreparedBranching):
    def branch_tasks(self, state: SearchState) -> list[int]:
        return state.ready_tasks()

    def placements(
        self, state: SearchState, break_symmetry: bool = False
    ) -> list[tuple[int, int]]:
        procs = self._procs_for(state, break_symmetry)
        return [(t, q) for t in state.ready_tasks() for q in procs]


class BFnBranching(BranchingRule):
    """Breadth-First-All-Tasks: all ready tasks, all processors (optimal)."""

    name = "BFn"
    guarantees_optimal = True

    def prepare(self, problem: CompiledProblem) -> PreparedBranching:
        return _PreparedBFn(problem)


class _PreparedFixedOrder(PreparedBranching):
    def __init__(self, problem: CompiledProblem, order: list[int]) -> None:
        super().__init__(problem)
        if sorted(order) != list(range(problem.n)):
            raise ConfigurationError(
                "fixed branching order must be a permutation of all tasks"
            )
        self.order = tuple(order)

    def branch_tasks(self, state: SearchState) -> list[int]:
        task = self.order[state.level]
        if not state.is_ready(task):
            raise ConfigurationError(
                f"fixed branching order is not topological: task "
                f"{self.problem.names[task]!r} not ready at level {state.level}"
            )
        return [task]

    def placements(
        self, state: SearchState, break_symmetry: bool = False
    ) -> list[tuple[int, int]]:
        procs = self._procs_for(state, break_symmetry)
        return [(task, q) for task in self.branch_tasks(state) for q in procs]


class FixedOrderBranching(BranchingRule):
    """Branch over processors only, following a caller-supplied task order."""

    name = "fixed"
    guarantees_optimal = False

    def __init__(self, order: list[str] | list[int]) -> None:
        self._order = list(order)

    def prepare(self, problem: CompiledProblem) -> PreparedBranching:
        order = [
            problem.index[t] if isinstance(t, str) else int(t)
            for t in self._order
        ]
        return _PreparedFixedOrder(problem, order)


class DFBranching(BranchingRule):
    """Depth-First rule: fixed depth-first topological order."""

    name = "DF"
    guarantees_optimal = False

    def prepare(self, problem: CompiledProblem) -> PreparedBranching:
        order = [problem.index[n] for n in problem.graph.depth_first_order()]
        return _PreparedFixedOrder(problem, order)


class BF1Branching(BranchingRule):
    """Breadth-First-One-Task rule: fixed level order (Hou & Shin levels)."""

    name = "BF1"
    guarantees_optimal = False

    def prepare(self, problem: CompiledProblem) -> PreparedBranching:
        order = [problem.index[n] for n in problem.graph.level_order()]
        return _PreparedFixedOrder(problem, order)


class _PreparedAO(PreparedBranching):
    """Two-phase allocation-ordered branching (see :class:`AOState`).

    Phase 1 branches the next unallocated task (fixed topological order)
    over the candidate processors — on uniform interconnects only the
    used ones plus the first unused, which cancels processor-permutation
    symmetry without any ``break_symmetry`` opt-in (the normalization is
    what makes allocations canonical, so it is not optional here).
    Phase 2 branches every ready task *not in the sleep set* on its
    allocated processor, skipping children that would wake up with
    nothing left to branch (guaranteed dead ends — their completions
    live on the canonical interleaving through a sibling).
    """

    fused_compatible = False

    def __init__(self, problem: CompiledProblem) -> None:
        super().__init__(problem)
        self._uniform = problem.uniform_delay is not None

    def make_root(self) -> AOState:
        return ao_root_state(self.problem)

    @staticmethod
    def _require_ao(state: SearchState) -> AOState:
        if not isinstance(state, AOState):
            raise ConfigurationError(
                "allocation-ordered branching requires AOState vertices "
                "(build the root with its make_root(), not root_state())"
            )
        return state

    def branch_tasks(self, state: SearchState) -> list[int]:
        st = self._require_ao(state)
        if st.alloc_count < self.problem.n:
            return [st.alloc_order[st.alloc_count]]
        out = []
        mask = st.ready_mask & ~st.sleep_mask
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def placements(
        self, state: SearchState, break_symmetry: bool = False
    ) -> list[tuple[int, int]]:
        st = self._require_ao(state)
        m = self.problem.m
        if st.alloc_count < self.problem.n:
            task = st.alloc_order[st.alloc_count]
            if self._uniform:
                procs = min(st.used_processors() + 1, m)
            else:
                procs = m
            return [(task, q) for q in range(procs)]
        return [
            (t, st.alloc[t])
            for t in self.branch_tasks(st)
            if st.ordering_child_is_live(t, st.alloc[t])
        ]


class AOBranching(BranchingRule):
    """Allocation-Ordered duplicate-free rule (Orr & Sinnen, 1901.06899).

    Fix every task's processor first (canonically ordered and processor-
    normalized), then order tasks per processor with sleep-set pruning of
    commuting interleavings: each complete schedule — and each partial
    state — is reached by exactly one path, so no transposition table is
    needed (or allowed).  Explores every schedule ordering, hence
    optimal.
    """

    name = "AO"
    guarantees_optimal = True
    duplicate_free = True

    def prepare(self, problem: CompiledProblem) -> PreparedBranching:
        return _PreparedAO(problem)


BRANCHING_RULES: dict[str, type[BranchingRule]] = {
    BFnBranching.name: BFnBranching,
    BF1Branching.name: BF1Branching,
    DFBranching.name: DFBranching,
    AOBranching.name: AOBranching,
}
