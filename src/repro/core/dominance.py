"""Vertex dominance rules ``D`` (optional; OFF by default).

The paper deliberately does *not* use a dominance rule, "to preserve our
results as general as possible" (Section 3) — dominance and
characteristic functions are most powerful when tailored to a specific
processor scheduling strategy.  We ship two sound rules as ablations so
the benchmark suite can quantify what the paper left on the table:

* :class:`StateDominance` — a newly generated vertex is dominated when a
  previously seen vertex scheduled the *same task set* with pointwise
  no-later task finish times and processor availabilities (compared up
  to processor relabeling on uniform interconnects).  Sound for the
  append-only scheduling operation because every future placement's
  start time is monotone in those quantities.
* :class:`NoDominance` — the paper's choice.

Dominance stores grow with the search; :class:`StateDominance` keeps a
bounded Pareto front per scheduled-set key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .state import SearchState

__all__ = ["DominanceRule", "NoDominance", "StateDominance", "DOMINANCE_RULES"]


class DominanceRule(ABC):
    """Strategy interface for the dominance rule ``D``.

    A rule is *stateful per search*: the engine instantiates a fresh
    checker via :meth:`fresh` for every solve.
    """

    name: str = "?"

    @abstractmethod
    def fresh(self) -> "DominanceChecker": ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DominanceChecker(ABC):
    #: True when :meth:`is_dominated` is a stateless constant-False (no
    #: store to keep consistent).  The fused expansion path may then
    #: discard doomed children early; a stateful checker must observe
    #: the exact same child stream as the reference engine path, so
    #: early discards are disabled for it.
    is_noop: bool = False

    @abstractmethod
    def is_dominated(self, state: SearchState) -> bool:
        """Whether the state is dominated by one seen before (and record it)."""


class _NoChecker(DominanceChecker):
    is_noop = True

    def is_dominated(self, state: SearchState) -> bool:
        return False


class NoDominance(DominanceRule):
    """The paper's configuration: no dominance pruning."""

    name = "none"

    def fresh(self) -> DominanceChecker:
        return _NoChecker()


class _StateChecker(DominanceChecker):
    """Pareto fronts keyed by (scheduled set, canonical assignment).

    Soundness: two states with the same scheduled set and the same
    task-to-processor assignment (compared up to processor relabeling on
    uniform interconnects, exactly otherwise) offer identical future
    placement choices; if one finishes every scheduled task no later and
    frees every (correspondingly relabeled) processor no later, every
    completion of the other is matched or beaten — the later state is
    dominated.  This relies on the append-only scheduling operation being
    monotone in predecessor finishes and processor availabilities.
    """

    def __init__(self, max_front: int) -> None:
        self.max_front = max_front
        self._fronts: dict[
            tuple[int, tuple[int, ...]],
            list[tuple[tuple[float, ...], tuple[float, ...]]],
        ] = {}

    @staticmethod
    def _canonicalize(
        state: SearchState,
    ) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """Relabel processors by first use; remap avail accordingly."""
        if state.problem.uniform_delay is None:
            return state.proc_of, state.avail  # exact comparison only
        relabel: dict[int, int] = {}
        canon = []
        for q in state.proc_of:
            if q < 0:
                canon.append(-1)
            else:
                if q not in relabel:
                    relabel[q] = len(relabel)
                canon.append(relabel[q])
        av = [0.0] * state.problem.m
        next_free = len(relabel)
        for q, a in enumerate(state.avail):
            if q in relabel:
                av[relabel[q]] = a
            else:
                av[next_free] = a
                next_free += 1
        return tuple(canon), tuple(av)

    def is_dominated(self, state: SearchState) -> bool:
        assignment, av = self._canonicalize(state)
        key = (state.scheduled_mask, assignment)
        fin = state.finish
        front = self._fronts.setdefault(key, [])
        for ofin, oav in front:
            if all(of <= nf for of, nf in zip(ofin, fin)) and all(
                oa <= na for oa, na in zip(oav, av)
            ):
                return True
        if len(front) < self.max_front:
            front.append((fin, av))
        return False


class StateDominance(DominanceRule):
    """Pointwise finish/availability dominance over equal placements."""

    name = "state"

    def __init__(self, max_front: int = 64) -> None:
        self.max_front = max_front

    def fresh(self) -> DominanceChecker:
        return _StateChecker(self.max_front)

    def __repr__(self) -> str:
        return f"StateDominance(max_front={self.max_front})"


DOMINANCE_RULES: dict[str, type[DominanceRule]] = {
    NoDominance.name: NoDominance,
    StateDominance.name: StateDominance,
}
