"""Vertex dominance rules ``D`` (optional; OFF by default).

The paper deliberately does *not* use a dominance rule, "to preserve our
results as general as possible" (Section 3) — dominance and
characteristic functions are most powerful when tailored to a specific
processor scheduling strategy.  We ship two sound rules as ablations so
the benchmark suite can quantify what the paper left on the table:

* :class:`StateDominance` — a newly generated vertex is dominated when a
  previously seen vertex scheduled the *same task set* with pointwise
  no-later task finish times and processor availabilities (compared up
  to processor relabeling on uniform interconnects).  Sound for the
  append-only scheduling operation because every future placement's
  start time is monotone in those quantities.
* :class:`NoDominance` — the paper's choice.

Dominance stores grow with the search; :class:`StateDominance` keeps a
bounded Pareto front per scheduled-set key.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .state import SearchState

__all__ = [
    "DominanceRule",
    "DominanceChecker",
    "NoDominance",
    "StateDominance",
    "ChainedDominance",
    "DOMINANCE_RULES",
]


class DominanceRule(ABC):
    """Strategy interface for the dominance rule ``D``.

    A rule is *stateful per search*: the engine instantiates a fresh
    checker via :meth:`fresh` for every solve.
    """

    name: str = "?"

    @abstractmethod
    def fresh(self) -> "DominanceChecker": ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class DominanceChecker(ABC):
    #: True when :meth:`is_dominated` is a stateless constant-False (no
    #: store to keep consistent).  The fused expansion path may then
    #: discard doomed children early; a stateful checker without probe
    #: support must observe the exact same child stream as the reference
    #: engine path, so early discards are disabled for it.
    is_noop: bool = False

    #: True when the checker honours the replay-consistent observation
    #: contract below: :meth:`probe_placement` must be *exactly*
    #: equivalent — same verdicts, same internal store mutations — to
    #: materializing the child via ``parent.child_placed(task, proc, s,
    #: f)`` and calling :meth:`is_dominated` on it.  The fused expansion
    #: path then keeps its early-discard and lazy-state optimizations
    #: with the stateful checker in the loop: it calls the probe on every
    #: non-goal placement *before* any bound-based discard, mirroring the
    #: reference loop's bound → feasibility → dominance order (dominance
    #: runs before threshold elimination there too, and a dominated child
    #: consumes no sequence number on either path).
    supports_probe: bool = False

    @abstractmethod
    def is_dominated(self, state: SearchState) -> bool:
        """Whether the state is dominated by one seen before (and record it)."""

    def probe_placement(
        self, parent: SearchState, task: int, proc: int, s: float, f: float
    ) -> bool:
        """Verdict for the child ``parent + (task on proc at [s, f])``.

        Default bridge: materialize the child and defer to
        :meth:`is_dominated`.  Checkers that can answer from the parent's
        incremental signature override this and set
        :attr:`supports_probe`.
        """
        return self.is_dominated(parent.child_placed(task, proc, s, f))

    def telemetry(self) -> dict[str, int] | None:
        """Post-solve counters for observability (``None`` = nothing).

        Recognised keys the engine folds into :class:`SearchStats` and
        the metrics registry: ``duplicate_pruned`` plus the transposition
        table counters (``tt_hits``, ``tt_misses``, ``tt_inserts``,
        ``tt_evictions``, ``tt_rejects``, ``tt_collisions``,
        ``tt_filled``, ``tt_capacity``).
        """
        return None


class _NoChecker(DominanceChecker):
    is_noop = True

    def is_dominated(self, state: SearchState) -> bool:
        return False


class NoDominance(DominanceRule):
    """The paper's configuration: no dominance pruning."""

    name = "none"

    def fresh(self) -> DominanceChecker:
        return _NoChecker()


class _StateChecker(DominanceChecker):
    """Pareto fronts keyed by (scheduled set, canonical assignment).

    Soundness: two states with the same scheduled set and the same
    task-to-processor assignment (compared up to processor relabeling on
    uniform interconnects, exactly otherwise) offer identical future
    placement choices; if one finishes every scheduled task no later and
    frees every (correspondingly relabeled) processor no later, every
    completion of the other is matched or beaten — the later state is
    dominated.  This relies on the append-only scheduling operation being
    monotone in predecessor finishes and processor availabilities.
    """

    def __init__(self, max_front: int) -> None:
        self.max_front = max_front
        self.dominated_pruned = 0
        self.front_evictions = 0
        self._fronts: dict[
            tuple[int, tuple[int, ...]],
            list[tuple[tuple[float, ...], tuple[float, ...]]],
        ] = {}

    @staticmethod
    def _canonicalize(
        state: SearchState,
    ) -> tuple[tuple[int, ...], tuple[float, ...]]:
        """Relabel processors by first use; remap avail accordingly."""
        if state.problem.uniform_delay is None:
            return state.proc_of, state.avail  # exact comparison only
        relabel: dict[int, int] = {}
        canon = []
        for q in state.proc_of:
            if q < 0:
                canon.append(-1)
            else:
                if q not in relabel:
                    relabel[q] = len(relabel)
                canon.append(relabel[q])
        av = [0.0] * state.problem.m
        next_free = len(relabel)
        for q, a in enumerate(state.avail):
            if q in relabel:
                av[relabel[q]] = a
            else:
                av[next_free] = a
                next_free += 1
        return tuple(canon), tuple(av)

    def is_dominated(self, state: SearchState) -> bool:
        assignment, av = self._canonicalize(state)
        key = (state.scheduled_mask, assignment)
        fin = state.finish
        front = self._fronts.setdefault(key, [])
        for ofin, oav in front:
            if all(of <= nf for of, nf in zip(ofin, fin)) and all(
                oa <= na for oa, na in zip(oav, av)
            ):
                self.dominated_pruned += 1
                return True
        # Bounded front with deterministic FIFO eviction: once a key's
        # front is full, the oldest recorded state makes room.  Evicting
        # only ever *loses* pruning power (a forgotten state can no
        # longer dominate newcomers), so the bound never threatens
        # soundness — and FIFO keeps runs reproducible, unlike the
        # previous silent drop of every new entry at capacity.
        if len(front) >= self.max_front:
            front.pop(0)
            self.front_evictions += 1
        front.append((fin, av))
        return False

    def telemetry(self) -> dict[str, int]:
        return {
            "dominated_pruned": self.dominated_pruned,
            "front_evictions": self.front_evictions,
            "front_keys": len(self._fronts),
            "front_entries": sum(len(v) for v in self._fronts.values()),
        }

    def store_size(self) -> int:
        """Total recorded states across all fronts (bound regression hook)."""
        return sum(len(v) for v in self._fronts.values())


class StateDominance(DominanceRule):
    """Pointwise finish/availability dominance over equal placements."""

    name = "state"

    def __init__(self, max_front: int = 64) -> None:
        if max_front < 1:
            raise ValueError("max_front must be >= 1")
        self.max_front = max_front

    def fresh(self) -> DominanceChecker:
        return _StateChecker(self.max_front)

    def __repr__(self) -> str:
        return f"StateDominance(max_front={self.max_front})"


class _ChainedChecker(DominanceChecker):
    def __init__(self, checkers: list[DominanceChecker]) -> None:
        self.checkers = checkers
        self.is_noop = all(c.is_noop for c in checkers)
        # The chain can be probed only if every stateful member can:
        # probe and materialize-then-check must stay indistinguishable
        # for each link, or the fused path would diverge from reference.
        self.supports_probe = all(
            c.is_noop or c.supports_probe for c in checkers
        )

    def is_dominated(self, state: SearchState) -> bool:
        for c in self.checkers:
            if c.is_dominated(state):
                return True
        return False

    def probe_placement(
        self, parent: SearchState, task: int, proc: int, s: float, f: float
    ) -> bool:
        for c in self.checkers:
            if c.probe_placement(parent, task, proc, s, f):
                return True
        return False

    def telemetry(self) -> dict[str, int] | None:
        merged: dict[str, int] = {}
        for c in self.checkers:
            tel = c.telemetry()
            if tel:
                for k, v in tel.items():
                    merged[k] = merged.get(k, 0) + v
        return merged or None


class ChainedDominance(DominanceRule):
    """Short-circuit conjunction of dominance rules, checked in order.

    A child is pruned when *any* member rule dominates it; each sound
    member keeps the chain sound.  Used to compose the transposition
    layer with :class:`StateDominance`'s Pareto front.

    Order matters for economy, not soundness: put the cheapest / most
    selective rule first.  Every member still observes each surviving
    state (short-circuit skips later members on a prune, exactly as a
    single combined checker would).
    """

    def __init__(self, *rules: DominanceRule) -> None:
        if not rules:
            raise ValueError("ChainedDominance needs at least one rule")
        self.rules = rules
        self.name = "+".join(r.name for r in rules)

    def fresh(self) -> DominanceChecker:
        return _ChainedChecker([r.fresh() for r in self.rules])

    def __repr__(self) -> str:
        return f"ChainedDominance({', '.join(map(repr, self.rules))})"


#: Registry used by the CLI and parameter presets.  Values are rule
#: *classes*; constructor keywords (``StateDominance(max_front=...)``,
#: ``TranspositionDominance(table_bytes=..., policy=...)``) are wired
#: through by the CLI.  ``repro.core.transposition`` registers its rule
#: here on import.
DOMINANCE_RULES: dict[str, type[DominanceRule]] = {
    NoDominance.name: NoDominance,
    StateDominance.name: StateDominance,
}
