#!/usr/bin/env python3
"""Scheduling a multirate radar DSP application over one hyperperiod.

The paper's task model is periodic (Section 2.2) even though its
evaluation schedules a single invocation; this example exercises the
periodic machinery end-to-end — the kind of multiprocessor DSP workload
the paper cites as a B&B application domain (Konstantinides et al. [2]).

The application is a classic multirate radar chain:

* a fast front end at 10 ms period: pulse compression -> doppler filter,
* a slow back end at 20 ms period: CFAR detection -> tracker -> display,

with a rate transition between doppler filtering and CFAR.  The graph is
unrolled over one 20 ms hyperperiod into a job-level DAG (two invocations
of each fast task, one of each slow task, with invocation-order chains
and rate-transition edges), which the single-shot B&B then schedules
optimally on a 2-DSP shared-bus board.
"""

from repro import (
    BnBParameters,
    Channel,
    Task,
    TaskGraph,
    compile_problem,
    edf_schedule,
    shared_bus_platform,
    solve,
)
from repro.core import ResourceBounds
from repro.model import hyperperiod, unroll

FAST_T = 10.0  # ms
SLOW_T = 20.0  # ms


def build_radar() -> TaskGraph:
    g = TaskGraph(name="radar")
    # Fast front end (per-pulse), deadlines within the period.
    g.add_task(Task(name="pulse_comp", wcet=2.0, relative_deadline=6.0, period=FAST_T))
    g.add_task(Task(name="doppler", wcet=3.0, relative_deadline=10.0, period=FAST_T))
    # Slow back end (per-dwell).
    g.add_task(Task(name="cfar", wcet=4.0, relative_deadline=14.0, period=SLOW_T, phase=0.0))
    g.add_task(Task(name="tracker", wcet=5.0, relative_deadline=18.0, period=SLOW_T))
    g.add_task(Task(name="display", wcet=1.0, relative_deadline=20.0, period=SLOW_T))
    g.add_channel(Channel(src="pulse_comp", dst="doppler", message_size=1.0))
    g.add_channel(Channel(src="doppler", dst="cfar", message_size=2.0))
    g.add_channel(Channel(src="cfar", dst="tracker", message_size=0.5))
    g.add_channel(Channel(src="tracker", dst="display", message_size=0.2))
    return g


def main() -> None:
    radar = build_radar()
    hp = hyperperiod(radar)
    print(f"application: {radar!r}")
    print(f"hyperperiod: {hp:g} ms")

    jobs = unroll(radar)
    print(f"\nunrolled job DAG: {len(jobs)} jobs, {jobs.num_arcs} arcs")
    for job in jobs:
        print(
            f"  {job.name:14s} window [{job.arrival(1):5.1f}, "
            f"{job.absolute_deadline(1):5.1f}]  c={job.wcet:g}"
        )
    print("  rate transitions / chains:")
    for ch in jobs.channels:
        print(f"    {ch.src} -> {ch.dst}")

    platform = shared_bus_platform(2)
    problem = compile_problem(jobs, platform)
    edf = edf_schedule(problem)
    result = solve(
        jobs,
        platform,
        BnBParameters(resources=ResourceBounds(max_vertices=2_000_000)),
    )
    print(f"\nEDF:  L_max = {edf.max_lateness:+.2f} ms")
    print(f"B&B:  {result.summary()}")
    sched = result.schedule()
    sched.validate()
    print("\n" + sched.as_table())
    if result.best_cost <= 0:
        print(
            "\nall jobs meet their deadlines: the radar chain is "
            f"schedulable on 2 DSPs with {-result.best_cost:.2f} ms to spare"
        )
    else:
        print("\nthe dwell overruns; consider a third DSP")


if __name__ == "__main__":
    main()
