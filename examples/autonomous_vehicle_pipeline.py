#!/usr/bin/env python3
"""Scheduling a perception-planning-control pipeline on a dual/quad ECU.

A hand-modelled hard real-time workload of the kind the paper's
introduction motivates (distributed real-time systems with end-to-end
deadlines): an autonomous-vehicle frame pipeline

    camera_L  camera_R   lidar    radar          (sensor drivers)
        \\       /          |        |
       stereo_match     lidar_seg  radar_track   (feature extraction)
              \\            |       /
                 sensor_fusion                   (fusion)
                /             \\
          object_pred       localization
                \\             /
                 motion_plan
                      |
                  trajectory
                      |
                   actuation

All times in milliseconds; message sizes in kilobytes over a shared
CAN-FD-like bus at 0.02 ms/KB.  The pipeline must finish within a 100 ms
frame; per-task deadlines are derived with the paper's slicing pass.

The script compares EDF against the optimal B&B on 2, 3 and 4 ECUs,
prints the Gantt charts, and uses the characteristic-function extension
to answer the feasibility question directly ("is there any schedule that
meets every deadline?").
"""

from repro import (
    BnBParameters,
    Channel,
    Task,
    TaskGraph,
    compile_problem,
    edf_schedule,
    shared_bus_platform,
    solve,
)
from repro.analysis import render_gantt, schedule_metrics
from repro.core import LatenessTargetFilter, ResourceBounds
from repro.model import simulate_bus
from repro.workload import assign_deadlines_detailed

FRAME_MS = 100.0
BUS_MS_PER_KB = 0.02


def build_pipeline() -> TaskGraph:
    g = TaskGraph(name="av-pipeline")
    # (name, wcet ms)
    tasks = [
        ("camera_L", 6.0),
        ("camera_R", 6.0),
        ("lidar", 9.0),
        ("radar", 4.0),
        ("stereo_match", 14.0),
        ("lidar_seg", 12.0),
        ("radar_track", 5.0),
        ("sensor_fusion", 10.0),
        ("object_pred", 8.0),
        ("localization", 7.0),
        ("motion_plan", 12.0),
        ("trajectory", 6.0),
        ("actuation", 2.0),
    ]
    for name, wcet in tasks:
        g.add_task(Task(name=name, wcet=wcet))
    # (src, dst, payload KB)
    flows = [
        ("camera_L", "stereo_match", 600.0),
        ("camera_R", "stereo_match", 600.0),
        ("lidar", "lidar_seg", 400.0),
        ("radar", "radar_track", 40.0),
        ("stereo_match", "sensor_fusion", 150.0),
        ("lidar_seg", "sensor_fusion", 120.0),
        ("radar_track", "sensor_fusion", 30.0),
        ("sensor_fusion", "object_pred", 80.0),
        ("sensor_fusion", "localization", 60.0),
        ("object_pred", "motion_plan", 50.0),
        ("localization", "motion_plan", 40.0),
        ("motion_plan", "trajectory", 30.0),
        ("trajectory", "actuation", 10.0),
    ]
    for src, dst, kb in flows:
        g.add_channel(
            Channel(src=src, dst=dst, message_size=kb * BUS_MS_PER_KB)
        )
    return g


def main() -> None:
    raw = build_pipeline()
    # Slice the 100 ms frame deadline over the pipeline.  The laxity
    # ratio is frame / total work.
    laxity = FRAME_MS / raw.total_workload
    det = assign_deadlines_detailed(
        raw, laxity_ratio=laxity, include_comm=False
    )
    graph = det.graph
    print(f"pipeline: {len(graph)} tasks, {graph.num_arcs} flows")
    print(
        f"  total work {graph.total_workload:.0f} ms, critical path "
        f"{graph.critical_path_length(include_comm=False):.0f} ms (compute), "
        f"frame budget {det.end_to_end:.0f} ms"
    )
    print(f"  critical path: {' -> '.join(graph.critical_path())}")

    rb = ResourceBounds(max_vertices=2_000_000, time_limit=60.0)
    for ecus in (2, 3, 4):
        platform = shared_bus_platform(ecus)
        problem = compile_problem(graph, platform)
        edf = edf_schedule(problem)
        result = solve(graph, platform, BnBParameters(resources=rb))
        sched = result.schedule()
        m = schedule_metrics(sched)
        verdict = "MEETS the frame" if result.best_cost <= 0 else "MISSES the frame"
        print(f"\n=== {ecus} ECUs ===")
        print(
            f"EDF  L_max = {edf.max_lateness:+7.2f} ms | "
            f"B&B optimal L_max = {result.best_cost:+7.2f} ms -> {verdict}"
        )
        print(
            f"makespan {m.makespan:.1f} ms, utilization {m.utilization:.0%}, "
            f"{m.remote_messages} bus transfers ({m.communication_time:.1f} ms), "
            f"{result.stats.generated} vertices in {result.stats.elapsed:.2f} s"
        )
        print(render_gantt(sched, width=64))
        bus = simulate_bus(sched)
        print(f"bus check: {bus.summary()}")

    # Feasibility question, asked directly: the characteristic function
    # F prunes everything that cannot meet all deadlines and stops at
    # the first feasible schedule.
    print("\n=== feasibility search (F = lateness-target 0) on 2 ECUs ===")
    params = BnBParameters(
        characteristic=LatenessTargetFilter(target=0.0), resources=rb
    )
    result = solve(graph, shared_bus_platform(2), params)
    if result.found_solution and result.best_cost <= 0:
        print(
            f"feasible schedule found after {result.stats.generated} vertices "
            f"(status: {result.status.value})"
        )
    else:
        print(
            f"no feasible schedule exists on this platform "
            f"(best lateness {result.best_cost:+.2f} ms)"
        )


if __name__ == "__main__":
    main()
