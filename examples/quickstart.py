#!/usr/bin/env python3
"""Quickstart: generate a paper workload, schedule it optimally, inspect it.

This walks the full public API surface in ~40 lines of actual code:

1. generate a random task graph with the exact Section 4.1 parameters
   (12-16 tasks, depth 8-12, mean WCET 20 +/- 99%, CCR 1.0, laxity 1.5);
2. build the paper's evaluation platform (shared bus, 1 time unit per
   data item);
3. run the greedy EDF baseline;
4. run the optimal parametrized branch-and-bound
   (B=BFn, S=LIFO, E=U/DBAS, L=LB1, U=EDF, BR=0%);
5. print both schedules, the lateness improvement, and search statistics.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    BnBParameters,
    compile_problem,
    edf_schedule,
    generate_task_graph,
    shared_bus_platform,
    solve,
)
from repro.analysis import lateness_improvement, render_gantt
from repro.model import simulate_bus
from repro.workload import paper_spec


def main(seed: int = 13) -> None:
    # 1. The Section 4.1 workload.
    graph = generate_task_graph(paper_spec(), seed=seed)
    print(f"workload: {graph!r}")
    print(
        f"  depth={graph.depth} width={graph.width} "
        f"parallelism={graph.parallelism():.2f} "
        f"CCR={graph.communication_to_computation_ratio():.2f}"
    )

    # 2. The evaluation platform: two identical processors on a shared bus.
    platform = shared_bus_platform(2)

    # 3. Greedy EDF: the reference baseline and the B&B's initial bound.
    problem = compile_problem(graph, platform)
    edf = edf_schedule(problem)
    print(f"\nEDF baseline:  L_max = {edf.max_lateness:.2f}")

    # 4. The optimal branch-and-bound.  BnBParameters() defaults to the
    #    paper's best configuration; see BnBParameters.describe().
    params = BnBParameters()
    print(f"solving with {params.describe()}")
    result = solve(graph, platform, params)

    # 5. Results.
    print(f"\n{result.summary()}")
    schedule = result.schedule()
    schedule.validate()  # independent consistency check
    print("\n" + schedule.as_table())
    print("\n" + render_gantt(schedule))

    # Was the nominal-delay bus model safe?  Simulate the shared bus
    # explicitly, serializing the remote messages.
    print("\n" + simulate_bus(schedule).summary())

    gain = lateness_improvement(edf.max_lateness, result.best_cost)
    print(
        f"\nB&B vs EDF: {result.best_cost:.2f} vs {edf.max_lateness:.2f} "
        f"({gain:+.1%} lateness improvement)"
    )
    print(
        f"search effort: {result.stats.generated} vertices generated, "
        f"{result.stats.explored} explored, "
        f"{result.stats.pruned_total} pruned "
        f"({result.stats.vertices_per_second:,.0f} vertices/s)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 13)
