#!/usr/bin/env python3
"""Design-space exploration of the Kohler-Steiglitz 9-tuple.

The point of a *parametrized* B&B is that each parameter is a swappable
strategy.  This example fixes one workload ensemble and walks the design
space on two axes:

1. **Algorithm space** — every selection rule x lower bound x branching
   rule x BR combination the paper studies (plus our LB2 and dominance
   extensions), reporting searched vertices, peak memory and lateness.
2. **Platform space** — the same application on different interconnect
   topologies (shared bus, fully connected, ring, mesh), showing how
   nominal delay structure shifts the optimal lateness.

Output is a pair of aligned tables; takes ~half a minute.
"""

import statistics

from repro import BnBParameters, compile_problem, shared_bus_platform, solve
from repro.core import (
    BranchAndBound,
    LB0,
    LB1,
    LB2,
    ResourceBounds,
    StateDominance,
)
from repro.model import FullyConnected, Mesh2D, Platform, Ring, SharedBus
from repro.workload import generate_task_graph, scaled_spec

RB = ResourceBounds(max_vertices=400_000, time_limit=20.0)
SEEDS = range(10)
PROCESSORS = 3


def algorithm_space():
    return {
        "BFn/LIFO/LB1 (paper opt)": BnBParameters.paper_default(resources=RB),
        "BFn/LLB/LB1": BnBParameters.paper_llb(resources=RB),
        "BFn/LIFO/LB0": BnBParameters.paper_lb0(resources=RB),
        "BFn/LIFO/LB2 (ours)": BnBParameters.paper_default(
            resources=RB, lower_bound=LB2()
        ),
        "BFn/LIFO/LB1 BR=10%": BnBParameters.near_optimal(0.10, resources=RB),
        "DF/LIFO/LB1 (approx)": BnBParameters.approximate_df(resources=RB),
        "BF1/LIFO/LB1 (approx)": BnBParameters.approximate_bf1(resources=RB),
        "BFn/LIFO/LB1 +dominance": BnBParameters.paper_default(
            resources=RB, dominance=StateDominance()
        ),
        "BFn/LIFO/LB1 +symmetry": BnBParameters.paper_default(
            resources=RB, break_symmetry=True
        ),
    }


def explore_algorithms() -> None:
    spec = scaled_spec()
    problems = [
        compile_problem(
            generate_task_graph(spec, seed=s), shared_bus_platform(PROCESSORS)
        )
        for s in SEEDS
    ]
    print(f"== algorithm space ({len(problems)} graphs, m={PROCESSORS}) ==")
    header = f"{'configuration':28s} {'vertices':>10s} {'peak AS':>8s} {'L_max':>8s} {'time':>7s}"
    print(header)
    print("-" * len(header))
    for label, params in algorithm_space().items():
        solver = BranchAndBound(params)
        results = [solver.solve(p) for p in problems]
        print(
            f"{label:28s} "
            f"{statistics.mean(r.stats.generated for r in results):10.0f} "
            f"{statistics.mean(r.stats.peak_active for r in results):8.0f} "
            f"{statistics.mean(r.best_cost for r in results):8.2f} "
            f"{sum(r.stats.elapsed for r in results):6.2f}s"
        )


def platform_space():
    m = 4
    return {
        "shared bus (paper)": Platform(m, SharedBus(m)),
        "fully connected": Platform(m, FullyConnected(m)),
        "ring": Platform(m, Ring(m)),
        "2x2 mesh": Platform(m, Mesh2D(rows=2, cols=2)),
        "bus, 2x slower": Platform(m, SharedBus(m, delay_per_item=2.0)),
    }


def explore_platforms() -> None:
    spec = scaled_spec()
    graphs = [generate_task_graph(spec, seed=s) for s in SEEDS]
    print(f"\n== platform space ({len(graphs)} graphs, m=4, optimal B&B) ==")
    header = f"{'interconnect':22s} {'L_max':>8s} {'vertices':>10s}"
    print(header)
    print("-" * len(header))
    params = BnBParameters.paper_default(resources=RB)
    for label, platform in platform_space().items():
        lats, gens = [], []
        for g in graphs:
            r = solve(g, platform, params)
            lats.append(r.best_cost)
            gens.append(r.stats.generated)
        print(
            f"{label:22s} {statistics.mean(lats):8.2f} "
            f"{statistics.mean(gens):10.0f}"
        )


if __name__ == "__main__":
    explore_algorithms()
    explore_platforms()
